"""The certain-answer oracle: textbook OMQ semantics via the chase.

``certain_answers`` and ``is_certain_answer`` implement the left-hand
side of reduction (1) of the paper directly, and are the ground truth
against which every rewriting is validated in the test suite.

A homomorphism of a connected CQ whose image touches an individual
stays within ``|var(q)|`` levels of the data, so a chase of depth
``min(depth(W_T), |var(q)|)`` suffices for it.  A Boolean connected CQ
may instead map entirely inside the anonymous tree; its topmost image
element is then a null whose subtree is homomorphically equivalent to
the canonical model of ``{A_{rho-}(b)}`` for the null's incoming letter
``rho`` — so those matches are decided by per-letter *state checks*
over fresh single-individual models (again of depth ``|var(q)|``).
"""

from __future__ import annotations

import itertools
import math
from typing import FrozenSet, List, Optional, Set, Tuple

from ..data.abox import ABox, Constant
from ..ontology.depth import chase_depth, successor_graph
from ..ontology.tbox import surrogate_name
from ..ontology.terms import Exists, Role
from ..queries.cq import CQ
from .canonical import CanonicalModel, individual
from .homomorphism import find_homomorphism, homomorphisms


def depth_bound(tbox, query: CQ) -> int:
    """The chase depth sufficient for matches anchored at individuals:
    ``min(depth(W_T), |var(q)|)``."""
    depth = chase_depth(tbox)
    bound = max(1, len(query.variables))
    if depth is math.inf:
        return bound
    return min(int(depth), bound)


def canonical_model_for(tbox, abox: ABox, query: CQ,
                        max_depth: Optional[int] = None) -> CanonicalModel:
    """A canonical model deep enough for anchored matches of ``query``."""
    if max_depth is None:
        max_depth = depth_bound(tbox, query)
    return CanonicalModel(tbox, abox, max_depth=max_depth)


def reachable_letters(tbox, abox: ABox) -> FrozenSet[Role]:
    """The letters that can occur in a null of ``C_{T,A}``: initial
    letters forced at some individual, closed under the successor
    relation of ``W_T``."""
    graph = successor_graph(tbox)
    model = CanonicalModel(tbox, abox, max_depth=0)
    initial: Set[Role] = set()
    for constant in abox.individuals:
        for concept in model.entailed_concepts(constant):
            if isinstance(concept, Exists):
                role = concept.role
                if role in graph:
                    initial.add(role)
    seen = set(initial)
    stack = list(initial)
    while stack:
        letter = stack.pop()
        for succ in graph.get(letter, ()):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return frozenset(seen)


def _boolean_component_holds(tbox, abox: ABox, query: CQ,
                             model: CanonicalModel) -> bool:
    """``T, A |= q`` for a Boolean connected CQ: an anchored match in
    the depth-bounded model, or a fully anonymous match found through
    the per-letter state checks."""
    if find_homomorphism(model, query) is not None:
        return True
    bound = max(1, len(query.variables))
    for letter in sorted(reachable_letters(tbox, abox)):
        state_abox = ABox([(surrogate_name(letter.inverse()), ("_state",))])
        state_model = CanonicalModel(tbox, state_abox, max_depth=bound)
        if find_homomorphism(state_model, query) is not None:
            return True
    return False


def is_certain_answer(tbox, abox: ABox, query: CQ,
                      candidate: Tuple[Constant, ...],
                      max_depth: Optional[int] = None) -> bool:
    """``T, A |= q(candidate)``."""
    if len(candidate) != len(query.answer_vars):
        raise ValueError("candidate arity mismatch")
    if any(constant not in abox.individuals for constant in candidate):
        return False
    assignment = dict(zip(query.answer_vars, candidate))
    model = canonical_model_for(tbox, abox, query, max_depth)
    for component in query.connected_components():
        sub_answers = tuple(v for v in query.answer_vars if v in component)
        sub = query.restrict_to(component, sub_answers)
        if sub_answers:
            fixed = {var: individual(assignment[var])
                     for var in sub_answers}
            if find_homomorphism(model, sub, fixed) is None:
                return False
        elif not _boolean_component_holds(tbox, abox, sub, model):
            return False
    return True


def certain_answers(tbox, abox: ABox, query: CQ,
                    max_depth: Optional[int] = None
                    ) -> FrozenSet[Tuple[Constant, ...]]:
    """All certain answers to ``(T, q)`` over ``A``.

    For a Boolean query the result is ``{()}`` when ``T, A |= q`` and
    the empty set otherwise.
    """
    model = canonical_model_for(tbox, abox, query, max_depth)
    per_component: List[Tuple[Tuple[str, ...], Set[Tuple[Constant, ...]]]] = []
    for component in query.connected_components():
        sub_answers = tuple(v for v in query.answer_vars if v in component)
        sub = query.restrict_to(component, sub_answers)
        if not sub_answers:
            if not _boolean_component_holds(tbox, abox, sub, model):
                return frozenset()
            continue
        tuples: Set[Tuple[Constant, ...]] = set()
        for hom in homomorphisms(model, sub):
            image = tuple(hom[var] for var in sub_answers)
            if all(not word for _, word in image):
                tuples.add(tuple(constant for constant, _ in image))
        if not tuples:
            return frozenset()
        per_component.append((sub_answers, tuples))
    if not per_component:
        # fully Boolean query, all components satisfied
        return frozenset({()})
    answers: Set[Tuple[Constant, ...]] = set()
    order = {var: i for i, var in enumerate(query.answer_vars)}
    for combo in itertools.product(*(t for _, t in per_component)):
        merged: List[Optional[Constant]] = [None] * len(query.answer_vars)
        for (variables, _), values in zip(per_component, combo):
            for var, value in zip(variables, values):
                merged[order[var]] = value
        answers.add(tuple(merged))  # type: ignore[arg-type]
    return frozenset(answers)
