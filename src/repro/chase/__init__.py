"""Chase substrate: canonical models, homomorphisms, certain answers."""

from .canonical import CanonicalModel, Element, element_str, individual
from .certain import (
    canonical_model_for,
    certain_answers,
    depth_bound,
    is_certain_answer,
)
from .homomorphism import find_homomorphism, homomorphisms

__all__ = [
    "CanonicalModel",
    "Element",
    "canonical_model_for",
    "certain_answers",
    "depth_bound",
    "element_str",
    "find_homomorphism",
    "homomorphisms",
    "individual",
    "is_certain_answer",
]
