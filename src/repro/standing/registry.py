"""Standing-query state: subscriptions, deltas, and their registry.

A :class:`StandingQuery` is one live subscription: the compiled
:class:`~repro.rewriting.plan.Plan`, its execution options and engine,
the materialized answer set, and an epoch watermark (the dataset epoch
the materialization reflects).  The :class:`StandingRegistry` owns
every subscription, indexed per dataset *and* per EDB predicate of the
subscription's rewriting, so one update only ever touches the
subscriptions whose answers could have changed.

Maintenance (see :mod:`repro.standing.maintain`) runs inside the
service's writer-lock update path and commits an
:class:`AnswerDelta` per affected subscription; unaffected
subscriptions just advance their watermark.  Consumers read the state
through :meth:`StandingRegistry.poll` (long-poll with ``since_epoch``)
or through push listeners (the SSE bridge of
:mod:`repro.standing.push`).
"""

from __future__ import annotations

import itertools
import threading
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..obs import Observability

Row = Tuple[str, ...]

#: Default per-subscription delta history (polls further back resync).
HISTORY_LIMIT = 256


@dataclass(frozen=True)
class AnswerDelta:
    """One maintenance step's effect on a subscription's answers.

    ``added``/``removed`` are exact (diffed against the materialized
    set, so an update that re-derives an existing answer emits
    nothing).  A ``resync`` delta replaces the subscriber's state with
    ``answers`` wholesale — emitted when a push queue overflowed or a
    poll asked for epochs older than the retained history.
    """

    epoch: int
    added: FrozenSet[Row] = frozenset()
    removed: FrozenSet[Row] = frozenset()
    resync: bool = False
    answers: Optional[FrozenSet[Row]] = None

    @property
    def empty(self) -> bool:
        return not self.added and not self.removed and not self.resync

    def payload(self) -> Dict[str, object]:
        """The JSON wire shape (rows as sorted lists)."""
        body: Dict[str, object] = {
            "epoch": self.epoch,
            "added": sorted(list(row) for row in self.added),
            "removed": sorted(list(row) for row in self.removed)}
        if self.resync:
            body["resync"] = True
            body["answers"] = sorted(
                list(row) for row in (self.answers or frozenset()))
        return body

    @classmethod
    def from_payload(cls, body: Dict) -> "AnswerDelta":
        resync = bool(body.get("resync"))
        answers = None
        if resync:
            answers = frozenset(tuple(row)
                                for row in body.get("answers", ()))
        return cls(epoch=int(body.get("epoch", 0)),
                   added=frozenset(tuple(row)
                                   for row in body.get("added", ())),
                   removed=frozenset(tuple(row)
                                     for row in body.get("removed", ())),
                   resync=resync, answers=answers)


@dataclass
class StandingQuery:
    """One live subscription (mutable state guarded by ``condition``).

    ``disjuncts``/``disjunct_answers`` are the incremental-maintenance
    state managed by :mod:`repro.standing.maintain`:

    * ``disjuncts is None`` — the rewriting did not decompose (or the
      CQ is disconnected on a sharded dataset): every relevant update
      re-executes the full plan (the logged fallback);
    * ``disjunct_answers is None`` — the per-disjunct sets are invalid
      (a fallback or error ran): the next maintenance rebuilds them.

    ``disjunct_answers[i]`` maps shard id to that disjunct's answers on
    that shard (monolithic datasets use the single pseudo-shard ``-1``);
    the materialized :attr:`answers` is the union over everything.
    """

    subscription_id: str
    dataset: str
    plan: object
    options: object
    engine: str
    #: Owning tenant (see :mod:`repro.store.tenants`): poll and
    #: unsubscribe reject callers presenting another tenant's id.
    tenant: str = ""
    answers: FrozenSet[Row] = frozenset()
    #: Dataset epoch the materialization reflects.
    epoch: int = 0
    #: Epoch at/below which deltas are no longer retained in history.
    oldest_epoch: int = 0
    disjuncts: Optional[Sequence] = None
    disjunct_answers: Optional[List[Dict[int, FrozenSet[Row]]]] = None
    #: Set when an update failed partway: the materialization may not
    #: reflect the data, so the next update must refresh regardless of
    #: which predicates it touches.
    stale: bool = False
    closed: bool = False
    condition: threading.Condition = field(
        default_factory=threading.Condition)
    history: Deque[AnswerDelta] = field(default_factory=deque)
    listeners: List[Callable[[Optional[Dict]], None]] = field(
        default_factory=list)

    @property
    def predicates(self) -> FrozenSet[str]:
        """EDB predicates of the rewriting — the only relations whose
        change can move this subscription's answers (``__adom__``
        included iff the program uses it)."""
        return self.plan.ndl.program.edb_predicates

    def variant_key(self):
        """Identity of the data variant the plan evaluates over
        (``None`` = raw data, else the interned TBox's id)."""
        tbox = self.plan._variant_tbox()
        return None if tbox is None else id(tbox)

    def snapshot_payload(self) -> Dict[str, object]:
        """The JSON shape of ``POST /subscribe`` responses and resyncs
        (caller holds ``condition`` or tolerates a racy read)."""
        return {"subscription": self.subscription_id,
                "dataset": self.dataset,
                "epoch": self.epoch,
                "answers": sorted(list(row) for row in self.answers),
                "count": len(self.answers),
                "stale": self.stale,
                "plan_fingerprint": self.plan.fingerprint,
                "method": self.plan.method,
                "engine": self.engine}


class StandingRegistry:
    """Thread-safe home of every subscription, with per-dataset and
    per-predicate indexes.

    The registry never touches dataset locks: maintenance (running
    under a dataset's write lock) and pollers (holding no dataset
    lock) only meet on the registry lock and per-subscription
    conditions, so there is no lock-order cycle.
    """

    def __init__(self, history_limit: int = HISTORY_LIMIT,
                 obs: Optional[Observability] = None):
        self.history_limit = max(1, history_limit)
        self._lock = threading.RLock()
        self._subs: Dict[str, StandingQuery] = {}
        self._by_dataset: Dict[str, Set[str]] = {}
        #: dataset -> predicate -> subscription ids
        self._index: Dict[str, Dict[str, Set[str]]] = {}
        self._counter = itertools.count(1)
        # counters (served under "standing" in /stats and as
        # ``repro_standing_*`` metric families)
        self._obs = obs or Observability()
        self._subscribed_total = self._obs.standing_subscribed
        self._deltas_pushed = self._obs.standing_deltas
        self._tuples_pushed = self._obs.standing_tuples
        self._resyncs = self._obs.standing_resyncs
        self._fallbacks = self._obs.standing_fallbacks
        self._polls = self._obs.standing_polls
        self._maintenance_seconds = self._obs.standing_maintenance_seconds

    # -- membership ----------------------------------------------------------

    def new_id(self) -> str:
        return f"sub-{next(self._counter)}-{uuid.uuid4().hex[:8]}"

    def add(self, sub: StandingQuery) -> None:
        with self._lock:
            self._subs[sub.subscription_id] = sub
            self._by_dataset.setdefault(sub.dataset, set()).add(
                sub.subscription_id)
            index = self._index.setdefault(sub.dataset, {})
            for predicate in sub.predicates:
                index.setdefault(predicate, set()).add(sub.subscription_id)
            self._subscribed_total.inc()

    def get(self, subscription_id: str) -> StandingQuery:
        with self._lock:
            sub = self._subs.get(subscription_id)
        if sub is None:
            raise ValueError(
                f"unknown subscription {subscription_id!r}")
        return sub

    def remove(self, subscription_id: str) -> StandingQuery:
        with self._lock:
            sub = self._subs.pop(subscription_id, None)
            if sub is None:
                raise ValueError(
                    f"unknown subscription {subscription_id!r}")
            self._unindex(sub)
        self._close(sub)
        return sub

    def drop_dataset(self, dataset: str) -> List[StandingQuery]:
        """Remove (and close) every subscription of a dataset — called
        when the dataset is unregistered or replaced wholesale."""
        with self._lock:
            ids = self._by_dataset.pop(dataset, set())
            self._index.pop(dataset, None)
            dropped = [self._subs.pop(sid) for sid in ids
                       if sid in self._subs]
        for sub in dropped:
            self._close(sub)
        return dropped

    def close_all(self) -> None:
        with self._lock:
            subs = list(self._subs.values())
            self._subs.clear()
            self._by_dataset.clear()
            self._index.clear()
        for sub in subs:
            self._close(sub)

    def _unindex(self, sub: StandingQuery) -> None:
        ids = self._by_dataset.get(sub.dataset)
        if ids is not None:
            ids.discard(sub.subscription_id)
            if not ids:
                self._by_dataset.pop(sub.dataset, None)
        index = self._index.get(sub.dataset)
        if index is not None:
            for predicate in sub.predicates:
                members = index.get(predicate)
                if members is not None:
                    members.discard(sub.subscription_id)
                    if not members:
                        index.pop(predicate, None)
            if not index:
                self._index.pop(sub.dataset, None)

    @staticmethod
    def _close(sub: StandingQuery) -> None:
        with sub.condition:
            sub.closed = True
            listeners = list(sub.listeners)
            sub.listeners.clear()
            sub.condition.notify_all()
        for listener in listeners:
            listener(None)  # None = stream closed

    def for_dataset(self, dataset: str) -> List[StandingQuery]:
        with self._lock:
            ids = self._by_dataset.get(dataset, set())
            return [self._subs[sid] for sid in sorted(ids)
                    if sid in self._subs]

    def affected(self, dataset: str,
                 changed_by_variant: Dict[object, FrozenSet[str]]
                 ) -> List[StandingQuery]:
        """Subscriptions one update may have moved: looked up through
        the per-predicate index with each data variant's own changed
        set, plus any subscription whose maintenance state needs a
        rebuild (its epoch is behind regardless of predicates)."""
        with self._lock:
            index = self._index.get(dataset, {})
            ids: Set[str] = set()
            for key, changed in changed_by_variant.items():
                for predicate in changed:
                    for sid in index.get(predicate, ()):
                        sub = self._subs.get(sid)
                        if sub is not None and sub.variant_key() == key:
                            ids.add(sid)
            for sid in self._by_dataset.get(dataset, ()):
                sub = self._subs.get(sid)
                if sub is not None and (
                        sub.stale
                        or (sub.disjuncts is not None
                            and sub.disjunct_answers is None)):
                    ids.add(sid)
            return [self._subs[sid] for sid in sorted(ids)
                    if sid in self._subs]

    def invalidate_dataset(self, dataset: str) -> None:
        """Mark every subscription of a dataset stale (an update
        failed partway).  The service follows up with a proactive
        resync; any subscription that resists it stays stale —
        surfaced in poll/snapshot bodies — until a later update's
        maintenance pass succeeds for it."""
        for sub in self.for_dataset(dataset):
            with sub.condition:
                sub.stale = True
                sub.disjunct_answers = None

    def count(self) -> int:
        with self._lock:
            return len(self._subs)

    # -- commits (called under the dataset write lock) -----------------------

    def commit(self, sub: StandingQuery, delta: AnswerDelta,
               new_answers: FrozenSet[Row]) -> None:
        """Apply one maintenance outcome: update the materialization
        and watermark, record the delta, wake pollers, push to
        listeners."""
        with sub.condition:
            sub.answers = new_answers
            sub.epoch = delta.epoch
            if not delta.empty:
                sub.history.append(delta)
                while len(sub.history) > self.history_limit:
                    dropped = sub.history.popleft()
                    sub.oldest_epoch = max(sub.oldest_epoch,
                                           dropped.epoch)
                listeners = list(sub.listeners)
            else:
                listeners = []
            sub.condition.notify_all()
        if not delta.empty:
            payload = delta.payload()
            self._deltas_pushed.inc()
            self._tuples_pushed.inc(len(delta.added) + len(delta.removed))
            for listener in listeners:
                listener(payload)

    def advance(self, sub: StandingQuery, epoch: int) -> None:
        """Move an unaffected subscription's watermark forward."""
        with sub.condition:
            sub.epoch = max(sub.epoch, epoch)

    def record_fallback(self) -> None:
        self._fallbacks.inc()

    def record_resync(self) -> None:
        self._resyncs.inc()

    def record_maintenance(self, seconds: float) -> None:
        self._maintenance_seconds.inc(seconds)

    # -- consumption ---------------------------------------------------------

    def attach(self, subscription_id: str,
               listener: Callable[[Optional[Dict]], None]
               ) -> Dict[str, object]:
        """Register a push listener and return the current snapshot,
        atomically — no delta between snapshot and registration can be
        missed (a delta committed concurrently is at worst delivered
        twice; its epoch tells the consumer to skip it)."""
        sub = self.get(subscription_id)
        with sub.condition:
            if sub.closed:
                raise ValueError(
                    f"subscription {subscription_id!r} is closed")
            sub.listeners.append(listener)
            return sub.snapshot_payload()

    def detach(self, subscription_id: str, listener) -> None:
        with self._lock:
            sub = self._subs.get(subscription_id)
        if sub is None:
            return
        with sub.condition:
            try:
                sub.listeners.remove(listener)
            except ValueError:
                pass

    def snapshot(self, subscription_id: str) -> Dict[str, object]:
        sub = self.get(subscription_id)
        with sub.condition:
            return sub.snapshot_payload()

    def poll(self, subscription_id: str,
             since_epoch: Optional[int] = None,
             timeout: float = 0.0) -> Dict[str, object]:
        """Deltas newer than ``since_epoch`` (default: the watermark —
        only future changes), blocking up to ``timeout`` seconds for
        one to arrive.  A ``since_epoch`` older than the retained
        history returns a full-snapshot resync instead."""
        import time

        sub = self.get(subscription_id)
        self._polls.inc()
        deadline = time.monotonic() + max(0.0, timeout)
        with sub.condition:
            if since_epoch is None:
                since_epoch = sub.epoch
            while True:
                if sub.closed:
                    raise ValueError(
                        f"subscription {subscription_id!r} is closed")
                if since_epoch < sub.oldest_epoch:
                    body = sub.snapshot_payload()
                    body["resync"] = True
                    body["deltas"] = []
                    self.record_resync()
                    return body
                deltas = [delta for delta in sub.history
                          if delta.epoch > since_epoch]
                remaining = deadline - time.monotonic()
                if deltas or remaining <= 0:
                    return {"subscription": sub.subscription_id,
                            "dataset": sub.dataset,
                            "epoch": sub.epoch,
                            "resync": False,
                            "stale": sub.stale,
                            "deltas": [delta.payload()
                                       for delta in deltas]}
                sub.condition.wait(remaining)

    # -- stats ---------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            per_dataset = {dataset: len(ids) for dataset, ids
                           in sorted(self._by_dataset.items())}
            return {"subscriptions": len(self._subs),
                    "subscribed_total": int(self._subscribed_total.value),
                    "per_dataset": per_dataset,
                    "deltas_pushed": int(self._deltas_pushed.value),
                    "tuples_pushed": int(self._tuples_pushed.value),
                    "resyncs": int(self._resyncs.value),
                    "fallback_reexecutions": int(self._fallbacks.value),
                    "polls": int(self._polls.value),
                    "maintenance_seconds": round(
                        self._maintenance_seconds.value, 6)}
