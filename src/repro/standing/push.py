"""Push delivery of standing-query deltas.

Two transports, both fed by the same registry listeners:

* **SSE** (async server only): ``GET /subscribe`` streams
  ``text/event-stream`` — one ``snapshot`` event up front (taken
  atomically with listener registration, so no delta can fall in the
  gap), then a ``delta`` event per maintenance commit.  The bridge
  from the service's update threads into the asyncio loop is a
  :class:`SubscriberStream`: a bounded queue that *drops* and degrades
  to a single ``resync`` event (full snapshot) on overflow instead of
  ever blocking the update path.
* **long-poll** (both servers): ``POST /poll`` with ``since_epoch``
  blocks until a newer delta exists and returns the retained deltas —
  or a resync snapshot when the asked-for epoch predates the bounded
  history.

Wire helpers for both live here so the servers and the clients parse
and format one way.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

#: Queued payloads per SSE subscriber before degrading to a resync.
MAX_QUEUE = 64

#: Sentinel queued in place of dropped deltas on overflow.
RESYNC = object()

#: Sentinel for "subscription closed" (queue-jumps nothing; listeners
#: deliver ``None`` and the stream forwards it).
CLOSED = None


def sse_event(event: str, data) -> bytes:
    """One Server-Sent-Events frame; ``data`` is JSON-encoded unless
    already a string."""
    if not isinstance(data, str):
        data = json.dumps(data, sort_keys=True)
    lines = data.splitlines() or [""]
    body = "".join(f"data: {line}\n" for line in lines)
    return f"event: {event}\n{body}\n".encode()


def decode_sse(block: str) -> Tuple[str, str]:
    """Parse one SSE frame (the text between blank lines) into
    ``(event, data)``; multi-line data is re-joined with newlines."""
    event = "message"
    data_lines = []
    for line in block.splitlines():
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            chunk = line[len("data:"):]
            data_lines.append(chunk[1:] if chunk.startswith(" ")
                              else chunk)
    return event, "\n".join(data_lines)


class SubscriberStream:
    """Bridge registry listener callbacks (fired from service update
    threads) into one SSE handler's asyncio queue.

    :meth:`listener` is the thread-safe entry point handed to
    :meth:`~repro.standing.registry.StandingRegistry.attach`; it never
    blocks.  All queue manipulation happens on the loop thread (via
    ``call_soon_threadsafe``), so producer and consumer cannot race.
    When the consumer is slower than the update stream and the queue
    reaches ``max_queue``, queued deltas are discarded and replaced by
    one :data:`RESYNC` marker; the handler then re-snapshots the
    subscription (which covers everything dropped — listeners fire
    after the commit mutates the materialization) and clears the
    overflow flag *before* snapshotting, so no later delta is lost.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 max_queue: int = MAX_QUEUE):
        self._loop = loop
        self._max = max(1, max_queue)
        self._queue: asyncio.Queue = asyncio.Queue()
        self._overflowed = False
        #: Overflow events (reported into the registry's resync count
        #: by the serving layer).
        self.overflows = 0

    def listener(self, payload: Optional[dict]) -> None:
        """The registry listener: enqueue from any thread."""
        self._loop.call_soon_threadsafe(self._push, payload)

    def _push(self, payload: Optional[dict]) -> None:
        if payload is CLOSED:
            self._queue.put_nowait(CLOSED)
            return
        if self._overflowed:
            # subsumed by the pending resync's snapshot
            return
        if self._queue.qsize() >= self._max:
            self._overflowed = True
            self.overflows += 1
            while not self._queue.empty():
                self._queue.get_nowait()
            self._queue.put_nowait(RESYNC)
            return
        self._queue.put_nowait(payload)

    def begin_resync(self) -> None:
        """Consumer-side (loop thread): re-admit deltas before taking
        the resync snapshot."""
        self._overflowed = False

    async def next_event(self):
        """The next queued payload: a delta dict, :data:`RESYNC`, or
        ``None`` once the subscription closed."""
        return await self._queue.get()
