"""``repro.standing`` — standing OMQs with incremental answer
maintenance and push delivery.

The paper's compile-once rewriting makes an OMQ a persistent object;
this package makes its *answers* persistent too.  A subscriber
registers ``(dataset, OMQ, options)`` once and thereafter receives
exactly the answer tuples each data update added or removed — N
subscribers cost one maintenance pass per update, not N re-queries.

Architecture (three modules, wired through the service layer):

* :mod:`repro.standing.registry` — the state.  A
  :class:`~repro.standing.registry.StandingQuery` holds the compiled
  plan, the materialized answer set and an *epoch watermark* (the
  dataset epoch the materialization reflects); the thread-safe
  :class:`~repro.standing.registry.StandingRegistry` indexes
  subscriptions per dataset *and* per EDB predicate of the rewriting,
  so an update only visits the subscriptions it can affect.  Each
  subscription keeps a bounded
  :class:`~repro.standing.registry.AnswerDelta` history for long-poll
  catch-up; polls asking past the history get a full-snapshot resync.

* :mod:`repro.standing.maintain` — the math.  The rewriting's goal
  clauses split into independently evaluable *disjuncts* (goal clause
  + its cone of IDB definitions); after an update, only the disjuncts
  mentioning a changed predicate — mapped through the plan's data
  variant: raw, completed (exact delta or per-atom-closure
  over-approximation), plus ``__adom__`` — are re-evaluated, and on
  sharded datasets only against the shards the update actually
  touched (PR 4's delta routing).  Per-(disjunct, shard) answer sets
  are materialized so deletions need no special casing: re-evaluate,
  replace, re-union, diff.  Whatever resists decomposition (or any
  evaluation error) falls back to a logged full re-execution.

* :mod:`repro.standing.push` — the plumbing.  SSE streaming over the
  async server (``GET /subscribe``) with bounded per-subscriber
  queues that degrade to a ``resync`` snapshot on overflow rather
  than ever blocking the update path, and long-poll
  (``POST /poll`` with ``since_epoch``) on both servers.

Maintenance runs inside the service's writer-lock update path — the
same critical section that bumps the dataset epoch — so a subscriber
can never observe a torn epoch: every delta it receives corresponds
to exactly one applied update.
"""

from .maintain import Disjunct, decompose, variant_changed_predicates
from .registry import AnswerDelta, StandingQuery, StandingRegistry
from .push import SubscriberStream, decode_sse, sse_event

__all__ = [
    "AnswerDelta",
    "Disjunct",
    "StandingQuery",
    "StandingRegistry",
    "SubscriberStream",
    "decode_sse",
    "decompose",
    "sse_event",
    "variant_changed_predicates",
]
