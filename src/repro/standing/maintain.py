"""Incremental maintenance of standing-query answers.

The compiled rewriting of an OMQ is a union-like NDL query: the goal
predicate has one clause per "disjunct", and each disjunct only
depends on its own cone of IDB predicates.  :func:`decompose` splits
the plan's program along those goal clauses into independently
evaluable :class:`Disjunct` sub-queries — the union of their answers
is exactly the full plan's answer set.

After an update, only the disjuncts containing at least one atom whose
predicate appears in the fact delta can change
(:func:`variant_changed_predicates` maps the raw delta into each data
variant: the raw predicates for arbitrary-instance rewritings, the
exact or over-approximated completed predicates otherwise, plus the
active-domain pseudo-predicate when individuals came or went).  Those
disjuncts are re-evaluated against the *updated* database — inserts
and deletes alike, since per-disjunct answer sets are materialized per
shard and simply replaced — and the new union is diffed against the
old materialization to produce the
:class:`~repro.standing.registry.AnswerDelta`.

Sharded datasets reuse PR 4's delta routing: only the shards that
received facts (including rebalance moves) are consulted, via
:meth:`~repro.shard.session.ShardedSession.execute_restricted`.
Anything that resists decomposition — or any evaluation error —
falls back to re-executing the full plan, logged and counted.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..data.abox import ABox
from ..datalog.program import ADOM, NDLQuery, Program

log = logging.getLogger("repro.standing")

Row = Tuple[str, ...]

#: Pseudo-shard key monolithic datasets use in per-disjunct answer maps.
MONOLITH = -1


@dataclass(frozen=True)
class Disjunct:
    """One goal clause plus its cone of IDB definitions, as a
    self-contained NDL query.  ``edb_predicates`` are the only base
    relations whose change can move this disjunct's answers."""

    index: int
    query: NDLQuery
    edb_predicates: FrozenSet[str]


def decompose(ndl: NDLQuery) -> Optional[List[Disjunct]]:
    """Split a rewriting into independently evaluable disjuncts, one
    per goal clause, or ``None`` when it does not decompose.

    Soundness: the goal relation is the union of each goal clause's
    derivations, and a clause's derivations depend only on the IDB
    predicates reachable from its body — all of whose clauses the
    disjunct's subprogram contains.  Hence ``answers(ndl) = union of
    answers(disjunct)`` on every database.
    """
    program = ndl.program
    goal_clauses = program.clauses_for(ndl.goal)
    if not goal_clauses:
        return None
    graph = program.dependence_graph()
    disjuncts: List[Disjunct] = []
    for index, clause in enumerate(goal_clauses):
        roots = {atom.predicate for atom in clause.body_literals
                 if atom.predicate in graph}
        reachable = set(roots)
        stack = list(roots)
        while stack:
            node = stack.pop()
            for successor in graph.get(node, ()):
                if successor not in reachable:
                    reachable.add(successor)
                    stack.append(successor)
        if ndl.goal in reachable:
            # cannot happen in a nonrecursive program, but a goal
            # reachable from its own body would break the split
            return None
        cone = [c for c in program.clauses
                if c.head.predicate != ndl.goal
                and c.head.predicate in reachable]
        try:
            sub_program = Program([clause] + cone)
        except ValueError:  # pragma: no cover - defensive
            return None
        query = NDLQuery(sub_program, ndl.goal, ndl.answer_vars)
        disjuncts.append(Disjunct(index, query,
                                  sub_program.edb_predicates))
    return disjuncts


def variant_changed_predicates(tbox, delta) -> FrozenSet[str]:
    """The predicates whose extension (may have) changed in the data
    variant a plan evaluates over.

    ``tbox=None`` selects the raw data: exactly the delta's
    predicates.  Otherwise the completed variant: the exact per-key
    set when the update layer recorded one, else the sound
    over-approximation — every predicate in the completion of the
    touched atoms (per-atom closure: no other predicate can change).
    """
    if tbox is None:
        changed = set(delta.raw_changed)
    else:
        exact = delta.completed_changed.get(id(tbox))
        if exact is not None:
            changed = set(exact)
        else:
            changed = {predicate for predicate, _ in
                       ABox(delta.atoms).complete(tbox).atoms()}
    if delta.adom_changed:
        changed.add(ADOM)
    return frozenset(changed)


def evaluate_disjunct(session, plan, query: NDLQuery, engine: str,
                      shards=None) -> Dict[int, FrozenSet[Row]]:
    """One disjunct's answers, per shard (monolithic sessions return
    the single pseudo-shard :data:`MONOLITH`).

    ``shards`` restricts a sharded evaluation to the shards an update
    touched; monolithic sessions ignore it.
    """
    from ..shard.session import ShardedSession

    if isinstance(session, ShardedSession):
        return session.execute_restricted(plan, query, engine=engine,
                                          shards=shards)
    backend = session.backend(engine, plan._variant_tbox())
    result = backend.evaluate(query)
    return {MONOLITH: frozenset(result.answers)}


def union_answers(answer_sets) -> FrozenSet[Row]:
    """The full answer set: union over disjuncts and shards."""
    rows = set()
    for by_shard in answer_sets:
        for answers in by_shard.values():
            rows.update(answers)
    return frozenset(rows)


def full_reexecute(sub, session) -> FrozenSet[Row]:
    """The correctness fallback: run the whole plan from scratch."""
    result = sub.plan.execute(session, engine=sub.engine,
                              options=sub.options)
    return frozenset(result.answers)


def initialize(sub, session) -> None:
    """Materialize a fresh subscription's answers and maintenance
    state against ``session`` (which must hold the current data).

    Disconnected CQs on sharded datasets do not decompose into
    broadcastable disjuncts (their sharded execution recombines
    per-component answer sets by cross product), so they pin the
    subscription to full-re-execution mode — as does any rewriting
    :func:`decompose` cannot split.
    """
    from ..shard.session import ShardedSession

    plan = sub.plan
    disjuncts = None
    sharded_disconnected = (isinstance(session, ShardedSession)
                            and not plan.omq.query.is_connected)
    if not sharded_disconnected:
        disjuncts = decompose(plan.ndl)
    if disjuncts is None:
        log.info("subscription %s does not decompose; every relevant "
                 "update will re-execute the full plan",
                 sub.subscription_id)
        sub.answers = full_reexecute(sub, session)
        sub.disjuncts = None
        sub.disjunct_answers = None
        return
    answer_sets = [evaluate_disjunct(session, plan, disjunct.query,
                                     sub.engine)
                   for disjunct in disjuncts]
    sub.disjuncts = disjuncts
    sub.disjunct_answers = answer_sets
    sub.answers = union_answers(answer_sets)


def refresh(sub, session, delta, changed: FrozenSet[str],
            memo: Optional[Dict] = None
            ) -> Tuple[FrozenSet[Row], bool]:
    """The subscription's new full answer set after an update whose
    variant-mapped changed predicates are ``changed``.

    Returns ``(answers, fallback_used)``.  Incremental path:
    re-evaluate only the disjuncts whose EDB predicates intersect
    ``changed``, only on the shards the update touched, and union with
    the untouched materialized sets.  ``memo`` (shared across the
    subscriptions of one update) deduplicates disjunct evaluations, so
    N subscribers of one plan cost one evaluation per affected
    disjunct.  Any error — or a subscription pinned to full mode —
    re-executes the whole plan instead (logged, counted by the
    caller).
    """
    if sub.disjuncts is not None:
        try:
            return _refresh_incremental(sub, session, delta, changed,
                                        memo), False
        except Exception as error:
            log.warning(
                "incremental maintenance failed for %s (%s: %s); "
                "re-executing the full plan", sub.subscription_id,
                type(error).__name__, error)
            sub.disjunct_answers = None
    return full_reexecute(sub, session), True


def _refresh_incremental(sub, session, delta,
                         changed: FrozenSet[str],
                         memo: Optional[Dict]) -> FrozenSet[Row]:
    plan = sub.plan
    if sub.disjunct_answers is None:
        # a previous fallback invalidated the per-disjunct sets:
        # rebuild them in full (all disjuncts, all shards).  Copy out
        # of the (shared) memo — later updates patch these dicts.
        sub.disjunct_answers = [
            dict(_evaluate(session, plan, disjunct, sub.engine, None,
                           memo))
            for disjunct in sub.disjuncts]
    else:
        shards = delta.touched_shards
        for disjunct in sub.disjuncts:
            if not disjunct.edb_predicates & changed:
                continue
            shard_sets = _evaluate(session, plan, disjunct,
                                   sub.engine, shards, memo)
            merged = dict(sub.disjunct_answers[disjunct.index])
            merged.update(shard_sets)
            sub.disjunct_answers[disjunct.index] = merged
    return union_answers(sub.disjunct_answers)


def _evaluate(session, plan, disjunct: Disjunct, engine: str, shards,
              memo: Optional[Dict]) -> Dict[int, FrozenSet[Row]]:
    if memo is None:
        return evaluate_disjunct(session, plan, disjunct.query,
                                 engine, shards)
    key = (id(plan), disjunct.index, engine,
           None if shards is None else frozenset(shards))
    found = memo.get(key)
    if found is None:
        found = evaluate_disjunct(session, plan, disjunct.query,
                                  engine, shards)
        memo[key] = found
    return found
