"""Figure 2 / Table 1: sizes of NDL-rewritings produced by the six
algorithms on the three OMQ sequences of Section 6.

The sequences are linear CQs over ``{R, S}`` coupled with the ontology
of Example 11 (``P <= S``, ``P <= R-``), all lying in ``OMQ(1, 1, 2)``.
Clause counts for Tw/Lin/Log grow linearly while the UCQ-style
baselines (our Rapid/Clipper/Presto stand-ins) grow exponentially, as
in the paper's barcharts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ontology.tbox import TBox
from ..queries.cq import chain_cq
from ..rewriting.api import OMQ
from ..rewriting.plan import compile_omq

#: The three query sequences of Section 6 / Appendix D.1.
SEQUENCES: Dict[str, str] = {
    "sequence1": "RRSRSRSRRSRRSSR",
    "sequence2": "SRRRRRSRSRRRRRR",
    "sequence3": "SRRSSRSRSRRSRRS",
}

#: The algorithms of Figure 2: ours plus the baseline stand-ins
#: (see DESIGN.md for the substitution table).
ALGORITHMS = ("tw", "lin", "log", "ucq", "perfectref", "presto")

TIMEOUT = "-"


def example11_tbox() -> TBox:
    """The ontology of Example 11: ``P(x,y) -> S(x,y)`` and
    ``P(x,y) -> R(y,x)`` (normalisation axioms added automatically)."""
    return TBox.parse("""
        roles: P, R, S
        P <= S
        P <= R-
    """)


@dataclass(frozen=True)
class SizePoint:
    """One bar of Figure 2: the size of one rewriting."""

    sequence: str
    atoms: int
    algorithm: str
    clauses: Optional[int]  # None = exceeded budget (the paper's "-")


def rewriting_sizes(max_atoms: int = 15,
                    algorithms: Sequence[str] = ALGORITHMS,
                    sequences: Optional[Dict[str, str]] = None,
                    perfectref_budget: int = 40000) -> List[SizePoint]:
    """Compute all Figure 2 bars up to ``max_atoms`` query atoms."""
    tbox = example11_tbox()
    points: List[SizePoint] = []
    sequences = sequences or SEQUENCES
    dead: set = set()
    for name, labels in sequences.items():
        for atoms in range(1, max_atoms + 1):
            query = chain_cq(labels[:atoms])
            omq = OMQ(tbox, query)
            for algorithm in algorithms:
                if (name, algorithm) in dead:
                    points.append(SizePoint(name, atoms, algorithm, None))
                    continue
                try:
                    if algorithm == "perfectref":
                        from ..rewriting.perfectref import perfectref_rewrite

                        clauses = len(perfectref_rewrite(
                            tbox, query, max_cqs=perfectref_budget))
                    else:
                        clauses = compile_omq(omq,
                                              method=algorithm).rules
                    points.append(
                        SizePoint(name, atoms, algorithm, clauses))
                except RuntimeError:
                    # exponential blow-up: the paper's "-" (timeout)
                    dead.add((name, algorithm))
                    points.append(SizePoint(name, atoms, algorithm, None))
    return points


def size_table(points: Sequence[SizePoint],
               sequence: str) -> List[List[object]]:
    """Rows of Table 1 for one sequence: one row per number of atoms,
    one column per algorithm."""
    by_atoms: Dict[int, Dict[str, Optional[int]]] = {}
    for point in points:
        if point.sequence == sequence:
            by_atoms.setdefault(point.atoms, {})[point.algorithm] = (
                point.clauses)
    rows = []
    for atoms in sorted(by_atoms):
        row: List[object] = [atoms]
        for algorithm in ALGORITHMS:
            clauses = by_atoms[atoms].get(algorithm)
            row.append(TIMEOUT if clauses is None else clauses)
        rows.append(row)
    return rows


def ascii_barchart(points: Sequence[SizePoint], sequence: str,
                   algorithms: Sequence[str] = ("tw", "lin", "log", "ucq"),
                   width: int = 50) -> str:
    """A terminal rendering of one Figure 2 barchart (log scale)."""
    import math

    lines = [f"Figure 2 - {sequence} (clauses, log scale)"]
    relevant = [p for p in points if p.sequence == sequence
                and p.algorithm in algorithms and p.clauses]
    if not relevant:
        return "\n".join(lines)
    top = max(p.clauses for p in relevant)
    for algorithm in algorithms:
        lines.append(f"  {algorithm}:")
        for point in sorted(relevant, key=lambda p: p.atoms):
            if point.algorithm != algorithm:
                continue
            bar = int(width * math.log(point.clauses + 1)
                      / math.log(top + 1))
            lines.append(f"    {point.atoms:2d} "
                         f"{'#' * bar} {point.clauses}")
    return "\n".join(lines)
