"""Ablations suggested by the paper's Section 6 / Appendix D.4
discussion: splitting strategies and program post-processing.

* ``splitting_comparison`` — the three optimal rewriters differ only in
  where they split the CQ (slices for Lin, balanced tree-decomposition
  subtrees for Log, centroids + tree witnesses for Tw); the paper notes
  none dominates, and this harness measures all three on the same OMQs.
* ``skinny_comparison`` — the Lemma 5 Huffman transformation versus the
  raw program (depth/width trade-off), and the ``Tw*`` inlining of
  Appendix D.4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from ..data.abox import ABox
from ..datalog.analysis import is_skinny
from ..datalog.transform import skinny_transform
from ..engine import PythonEngine
from ..queries.cq import chain_cq
from ..rewriting.api import OMQ, rewrite
from ..rewriting.plan import compile_omq
from .figure2 import SEQUENCES, example11_tbox


@dataclass(frozen=True)
class AblationPoint:
    sequence: str
    atoms: int
    variant: str
    clauses: int
    depth: int
    width: int
    seconds: float
    generated_tuples: int


def splitting_comparison(abox: ABox, sizes: Sequence[int] = (5, 9, 13),
                         sequences: Sequence[str] = tuple(SEQUENCES)
                         ) -> List[AblationPoint]:
    """Lin vs Log vs Tw (vs Tw*) on identical OMQs and data.

    The completed data is loaded and indexed once; every variant then
    evaluates against the same :class:`~repro.engine.PythonEngine`.
    """
    tbox = example11_tbox()
    engine = PythonEngine(abox.complete(tbox))
    points: List[AblationPoint] = []
    for sequence in sequences:
        labels = SEQUENCES[sequence]
        for atoms in sizes:
            query = chain_cq(labels[:atoms])
            omq = OMQ(tbox, query)
            for variant in ("lin", "log", "tw", "tw_star"):
                plan = compile_omq(omq, method=variant)
                answers = plan.execute(engine)
                points.append(AblationPoint(
                    sequence, atoms, variant, plan.rules, plan.depth,
                    plan.width, answers.seconds,
                    answers.generated_tuples))
    return points


def skinny_comparison(abox: ABox, sizes: Sequence[int] = (5, 9, 13)
                      ) -> List[AblationPoint]:
    """The Lemma 5 skinny transformation applied to the Log rewriting:
    equivalence plus the depth/size trade-off."""
    tbox = example11_tbox()
    engine = PythonEngine(abox.complete(tbox))
    labels = SEQUENCES["sequence1"]
    points: List[AblationPoint] = []
    for atoms in sizes:
        query = chain_cq(labels[:atoms])
        omq = OMQ(tbox, query)
        base = rewrite(omq, method="log")
        skinny = skinny_transform(base)
        assert is_skinny(skinny.program)
        for variant, ndl in (("log", base), ("log+skinny", skinny)):
            start = time.perf_counter()
            result = engine.evaluate(ndl)
            elapsed = time.perf_counter() - start
            points.append(AblationPoint(
                "sequence1", atoms, variant, len(ndl), ndl.depth(),
                ndl.width(), elapsed, result.generated_tuples))
    return points
