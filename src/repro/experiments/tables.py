"""Tables 3-5: evaluating the rewritings over the random datasets.

For each query sequence and dataset, every rewriting is evaluated with
the library's datalog engine (the RDFox stand-in); we record evaluation
time, the number of answers and the number of generated (materialised
IDB) tuples — the columns of Tables 3-5.  All rewritings are evaluated
over the T-completion of the data, which matches materialising the
``*``-layer up front.

Each dataset is loaded into one
:class:`~repro.engine.backends.Engine` for the whole table — the
paper's setting, where the data sits in RDFox/a DBMS once and only the
rewritings change — so the recorded times are pure evaluation, not
re-loading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..data.abox import ABox
from ..engine import create_engine
from ..queries.cq import chain_cq
from ..rewriting.api import OMQ
from ..rewriting.plan import AnswerOptions, compile_omq
from .figure2 import SEQUENCES, example11_tbox

#: The engines compared in Tables 3-5 (tw_star is the Tw* column of
#: Appendix D.4).
EVAL_ALGORITHMS = ("tw", "tw_star", "lin", "log", "ucq", "presto")


@dataclass(frozen=True)
class EvaluationPoint:
    """One cell group of Tables 3-5."""

    sequence: str
    dataset: str
    atoms: int
    algorithm: str
    seconds: Optional[float]
    answers: Optional[int]
    generated_tuples: Optional[int]

    @property
    def timed_out(self) -> bool:
        return self.seconds is None


def run_evaluation_table(sequence: str, datasets: Dict[str, ABox],
                         sizes: Sequence[int] = (1, 3, 5, 7, 9),
                         algorithms: Sequence[str] = EVAL_ALGORITHMS,
                         time_budget: float = 60.0,
                         engine: str = "python"
                         ) -> List[EvaluationPoint]:
    """Evaluate the rewritings of one sequence over all datasets.

    ``sizes`` are the query prefix lengths (the paper runs 1-15; the
    defaults keep the suite laptop-sized).  An algorithm that exceeds
    ``time_budget`` on a dataset is skipped for larger queries on that
    dataset (the paper's timeouts).  ``engine`` picks the evaluation
    backend (any of :data:`repro.engine.ENGINES`); each dataset is
    completed and loaded into it exactly once.
    """
    tbox = example11_tbox()
    labels = SEQUENCES[sequence]
    backends = {name: create_engine(engine, abox.complete(tbox))
                for name, abox in datasets.items()}
    points: List[EvaluationPoint] = []
    dead: set = set()
    try:
        for atoms in sizes:
            query = chain_cq(labels[:atoms])
            omq = OMQ(tbox, query)
            # compile once per algorithm, execute over every dataset —
            # reduction (1)'s prepare/execute split, with the paper's
            # timeouts carried by the plan itself
            plans = {}
            for algorithm in algorithms:
                options = AnswerOptions(method=algorithm,
                                        engine=engine,
                                        timeout=time_budget)
                try:
                    plans[algorithm] = compile_omq(omq, options)
                except RuntimeError:
                    plans[algorithm] = None
            for name, backend in backends.items():
                for algorithm in algorithms:
                    plan = plans[algorithm]
                    if plan is None or (name, algorithm) in dead:
                        points.append(EvaluationPoint(
                            sequence, name, atoms, algorithm,
                            None, None, None))
                        continue
                    answers = plan.execute(backend)
                    if answers.timed_out:
                        dead.add((name, algorithm))
                    points.append(EvaluationPoint(
                        sequence, name, atoms, algorithm, answers.seconds,
                        len(answers.answers), answers.generated_tuples))
    finally:
        for backend in backends.values():
            backend.close()
    return points


def table_rows(points: Sequence[EvaluationPoint],
               dataset: str) -> List[List[object]]:
    """Rows in the layout of Tables 3-5: per query size, evaluation
    time / answers / generated tuples per algorithm."""
    by_atoms: Dict[int, Dict[str, EvaluationPoint]] = {}
    for point in points:
        if point.dataset == dataset:
            by_atoms.setdefault(point.atoms, {})[point.algorithm] = point
    rows: List[List[object]] = []
    for atoms in sorted(by_atoms):
        row: List[object] = [atoms]
        cells = by_atoms[atoms]
        answers = next((p.answers for p in cells.values()
                        if p.answers is not None), "-")
        for algorithm in EVAL_ALGORITHMS:
            point = cells.get(algorithm)
            if point is None or point.timed_out:
                row.append("-")
            else:
                row.append(f"{point.seconds:.3f}")
        row.append(answers)
        for algorithm in EVAL_ALGORITHMS:
            point = cells.get(algorithm)
            if point is None or point.timed_out:
                row.append("-")
            else:
                row.append(point.generated_tuples)
        rows.append(row)
    return rows


def table_headers() -> List[str]:
    headers = ["atoms"]
    headers += [f"t({a})" for a in EVAL_ALGORITHMS]
    headers.append("answers")
    headers += [f"tuples({a})" for a in EVAL_ALGORITHMS]
    return headers


def consistency_check(points: Sequence[EvaluationPoint]) -> bool:
    """All engines that finished must report the same number of answers
    for the same (sequence, dataset, atoms) cell."""
    by_cell: Dict[tuple, set] = {}
    for point in points:
        if point.answers is not None:
            by_cell.setdefault(
                (point.sequence, point.dataset, point.atoms), set()).add(
                    point.answers)
        # generated tuples legitimately differ between engines
    return all(len(counts) == 1 for counts in by_cell.values())
