"""Experiment harnesses regenerating every table and figure."""

from .ablation import AblationPoint, skinny_comparison, splitting_comparison
from .datasets import DEFAULT_SCALE, TABLE2_HEADERS, table2
from .figure2 import (
    ALGORITHMS,
    SEQUENCES,
    SizePoint,
    ascii_barchart,
    example11_tbox,
    rewriting_sizes,
    size_table,
)
from .reporting import format_table, print_table
from .tables import (
    EVAL_ALGORITHMS,
    EvaluationPoint,
    consistency_check,
    run_evaluation_table,
    table_headers,
    table_rows,
)

__all__ = [
    "ALGORITHMS",
    "AblationPoint",
    "DEFAULT_SCALE",
    "EVAL_ALGORITHMS",
    "EvaluationPoint",
    "SEQUENCES",
    "SizePoint",
    "TABLE2_HEADERS",
    "ascii_barchart",
    "consistency_check",
    "example11_tbox",
    "format_table",
    "print_table",
    "rewriting_sizes",
    "run_evaluation_table",
    "size_table",
    "skinny_comparison",
    "splitting_comparison",
    "table2",
    "table_headers",
    "table_rows",
]
