"""Small helpers for printing the paper's tables from bench targets."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """A plain-text table with aligned columns."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
