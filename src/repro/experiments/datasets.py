"""Table 2: the generated datasets.

Reproduces the four Erdős–Rényi parameter settings of Appendix D.2,
scaled by a factor so the whole suite stays laptop-sized, and prints
the same columns as Table 2 (V, p, q, average degree, number of atoms).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..data.abox import ABox
from ..data.generator import TABLE2_SPECS, paper_datasets

#: Scale factor used by the benchmark suite (the paper's datasets reach
#: one million atoms; 0.08 keeps evaluation within seconds in Python
#: while preserving each dataset's average degree).
DEFAULT_SCALE = 0.08


def table2(scale: float = DEFAULT_SCALE,
           seed: int = 0) -> Tuple[Dict[str, ABox], List[List[object]]]:
    """The datasets plus the rows of Table 2."""
    datasets = paper_datasets(scale=scale, seed=seed)
    rows: List[List[object]] = []
    for spec in TABLE2_SPECS:
        abox = datasets[spec.name]
        vertices = max(10, int(spec.vertices * scale))
        probability = min(1.0, spec.average_degree / max(vertices - 1, 1))
        rows.append([
            spec.name,
            vertices,
            f"{probability:.4f}",
            f"{spec.mark_probability:.3f}",
            f"{spec.average_degree:.0f}",
            len(abox),
        ])
    return datasets, rows


TABLE2_HEADERS = ["dataset", "V", "p", "q", "avg degree", "no. of atoms"]
