"""OWL 2 QL ontologies (TBoxes) in normal form.

Following Section 2 of the paper, every TBox is put into *normal form*:
for every role ``rho`` in ``R_T`` (the binary predicates of ``T`` and
their inverses) a fresh surrogate atomic concept ``A_rho`` is introduced
together with the two inclusions of ``A_rho <-> Exists(rho)``.  The
surrogates are what the NDL rewritings of Section 3 use to test, inside
the data, whether an individual has a (possibly anonymous)
``rho``-successor.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, List, Optional

from .axioms import (
    Axiom,
    ConceptDisjointness,
    ConceptInclusion,
    Irreflexivity,
    Reflexivity,
    RoleDisjointness,
    RoleInclusion,
)
from .reasoning import Saturation
from .terms import TOP, Atomic, Concept, Exists, Role


def surrogate_name(role: Role) -> str:
    """The name of the surrogate concept ``A_rho`` for a role."""
    return f"A_{role}"


def _roles_of(axiom: Axiom) -> List[Role]:
    roles: List[Role] = []
    if isinstance(axiom, (RoleInclusion, RoleDisjointness)):
        roles.extend([axiom.lhs, axiom.rhs])
    elif isinstance(axiom, (Reflexivity, Irreflexivity)):
        roles.append(axiom.role)
    elif isinstance(axiom, (ConceptInclusion, ConceptDisjointness)):
        for concept in (axiom.lhs, axiom.rhs):
            if isinstance(concept, Exists):
                roles.append(concept.role)
    return roles


def _atomics_of(axiom: Axiom) -> List[str]:
    names: List[str] = []
    if isinstance(axiom, (ConceptInclusion, ConceptDisjointness)):
        for concept in (axiom.lhs, axiom.rhs):
            if isinstance(concept, Atomic):
                names.append(concept.name)
    return names


class TBox:
    """An OWL 2 QL ontology, normalised on construction.

    Parameters
    ----------
    axioms:
        the user-supplied axioms (any of the six forms of Section 2).

    Attributes
    ----------
    user_axioms:
        the axioms as supplied.
    axioms:
        user axioms plus the normalisation axioms ``A_rho <-> Exists rho``.
    roles:
        ``R_T``: every binary predicate of the ontology and its inverse.
    """

    def __init__(self, axioms: Iterable[Axiom]):
        self.user_axioms: List[Axiom] = list(axioms)
        role_names = {role.name for ax in self.user_axioms
                      for role in _roles_of(ax)}
        self.roles: FrozenSet[Role] = frozenset(
            Role(name, inverted) for name in role_names
            for inverted in (False, True))
        self._surrogates: Dict[Role, Atomic] = {
            role: Atomic(surrogate_name(role)) for role in self.roles}
        normalisation = []
        for role in sorted(self.roles):
            surrogate = self._surrogates[role]
            normalisation.append(ConceptInclusion(surrogate, Exists(role)))
            normalisation.append(ConceptInclusion(Exists(role), surrogate))
        self.normalisation_axioms: List[Axiom] = normalisation
        self.axioms: List[Axiom] = self.user_axioms + normalisation
        atomic_names = {name for ax in self.axioms for name in _atomics_of(ax)}
        self._saturation = Saturation(self.axioms, self.roles, atomic_names)
        self._depth: Optional[object] = None

    # -- vocabulary -----------------------------------------------------

    @property
    def atomic_concept_names(self) -> FrozenSet[str]:
        """All atomic concept names, including the surrogates ``A_rho``."""
        return frozenset(
            concept.name for concept in self._saturation.concepts
            if isinstance(concept, Atomic))

    @property
    def role_names(self) -> FrozenSet[str]:
        """All binary predicate names (without inverses)."""
        return frozenset(role.name for role in self.roles)

    def surrogate(self, role: Role) -> Atomic:
        """The surrogate concept ``A_rho`` with ``A_rho <-> Exists rho``."""
        return self._surrogates[role]

    # -- entailment -----------------------------------------------------

    def entails_concept(self, sub: Concept, sup: Concept) -> bool:
        """``T |= sub(x) -> sup(x)`` for basic concepts."""
        return self._saturation.entails_concept(sub, sup)

    def entails_role(self, sub: Role, sup: Role) -> bool:
        """``T |= sub(x, y) -> sup(x, y)``."""
        return self._saturation.entails_role(sub, sup)

    def is_reflexive(self, role: Role) -> bool:
        """``T |= role(x, x)``."""
        return self._saturation.is_reflexive(role)

    def concept_supers(self, concept: Concept) -> FrozenSet[Concept]:
        return self._saturation.concept_supers(concept)

    def concept_subs(self, concept: Concept) -> FrozenSet[Concept]:
        return self._saturation.concept_subs(concept)

    def role_supers(self, role: Role) -> FrozenSet[Role]:
        return self._saturation.role_supers(role)

    def role_subs(self, role: Role) -> FrozenSet[Role]:
        return self._saturation.role_subs(role)

    @property
    def saturation(self) -> Saturation:
        return self._saturation

    # -- witness structure ----------------------------------------------

    def successor_roles(self, role: Role) -> List[Role]:
        """Roles ``sigma`` that may follow ``role`` in a word of ``W_T``.

        ``sigma`` may follow ``rho`` iff ``T |= Exists(rho-) <= Exists(sigma)``
        but not ``T |= rho <= sigma-`` and not ``T |= sigma(x, x)``
        (Section 2, definition of the canonical model).
        """
        from .depth import successor_roles  # local import to avoid a cycle
        return successor_roles(self, role)

    def initial_roles(self, concept: Concept) -> List[Role]:
        """Roles ``rho`` such that ``concept(a)`` forces a witness ``a.rho``."""
        from .depth import initial_roles
        return initial_roles(self, concept)

    def depth(self):
        """The existential depth of the ontology (Section 2).

        Returns an ``int`` or ``math.inf``; depth 0 means no user axiom
        has an existential quantifier on the right-hand side.
        """
        from .depth import ontology_depth
        if self._depth is None:
            self._depth = ontology_depth(self)
        return self._depth

    # -- parsing and display ----------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "TBox":
        """Parse a newline/semicolon-separated list of axioms.

        Syntax (whitespace-insensitive; ``#`` starts a comment)::

            roles: P, S, R   declares role names (bare names default to
                             concepts, so declare every role up front)
            A <= EP          concept inclusion  A(x) -> exists y P(x,y)
            EP- <= B         concept inclusion  (exists y P(y,x)) -> B(x)
            P <= S-          role inclusion
            A & B <= bottom  concept disjointness
            P & S <= bottom  role disjointness
            refl(P)          reflexivity
            irrefl(P)        irreflexivity

        Besides the ``roles:`` declaration, role names are also inferred
        from ``refl``/``irrefl`` and trailing ``-`` inverses.  A token
        ``E<name>`` denotes the existential restriction over ``<name>``
        only when ``<name>`` is a known role; otherwise the whole token
        is an atomic concept (so names like ``Employee`` are safe).
        """
        axioms: List[Axiom] = []
        statements = [part.strip()
                      for chunk in text.splitlines()
                      for part in chunk.split(";")]
        role_names = set()
        pending: List[str] = []
        for statement in statements:
            statement = statement.split("#", 1)[0].strip()
            if not statement:
                continue
            if statement.startswith("roles:"):
                names = re.split(r"[\s,]+", statement[len("roles:"):].strip())
                role_names.update(name for name in names if name)
                continue
            pending.append(statement)
            # discover further role names from refl/irrefl and explicit
            # inverses
            for match in re.findall(r"(?:refl|irrefl)\(\s*([\w']+-?)\s*\)",
                                    statement):
                role_names.add(Role.parse(match).name)
            for match in re.findall(r"(?<![\w'])([A-Za-z_][\w']*)-",
                                    statement):
                if not match.startswith("E"):
                    role_names.add(match)
        for statement in pending:
            axioms.extend(cls._parse_statement(statement, role_names))
        return cls(axioms)

    @staticmethod
    def _parse_statement(statement: str, role_names) -> List[Axiom]:
        match = re.fullmatch(r"refl\(\s*([\w']+-?)\s*\)", statement)
        if match:
            return [Reflexivity(Role.parse(match.group(1)))]
        match = re.fullmatch(r"irrefl\(\s*([\w']+-?)\s*\)", statement)
        if match:
            return [Irreflexivity(Role.parse(match.group(1)))]
        if "<=" not in statement:
            raise ValueError(f"cannot parse axiom: {statement!r}")
        lhs_text, rhs_text = (part.strip()
                              for part in statement.split("<=", 1))

        def is_role(token: str) -> bool:
            if token == "T" or token == "bottom":
                return False
            return Role.parse(token).name in role_names

        def concept(token: str) -> Concept:
            # "E<role>" is an existential restriction only for known
            # roles; any other token is an atomic concept
            if token == "T":
                return TOP
            if token.startswith("E") and len(token) > 1:
                candidate = Role.parse(token[1:])
                if candidate.name in role_names:
                    return Exists(candidate)
            return Atomic(token)

        if rhs_text == "bottom":
            parts = [part.strip() for part in lhs_text.split("&")]
            if len(parts) == 1:
                parts = [parts[0], parts[0]]
            if all(is_role(part) for part in parts):
                return [RoleDisjointness(Role.parse(parts[0]),
                                         Role.parse(parts[1]))]
            return [ConceptDisjointness(concept(parts[0]),
                                        concept(parts[1]))]
        if is_role(lhs_text) and is_role(rhs_text):
            return [RoleInclusion(Role.parse(lhs_text),
                                  Role.parse(rhs_text))]
        return [ConceptInclusion(concept(lhs_text), concept(rhs_text))]

    def __len__(self) -> int:
        return len(self.axioms)

    def __str__(self) -> str:
        lines = [str(ax) for ax in self.user_axioms]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"TBox({len(self.user_axioms)} axioms, "
                f"{len(self.role_names)} roles, depth={self.depth()})")
