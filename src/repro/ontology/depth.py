"""Generating words ``W_T`` and the existential depth of an ontology.

The canonical model of ``(T, A)`` (Section 2) is built from labelled
nulls ``a . rho_1 ... rho_n`` whose tails ``rho_1 ... rho_n`` range over
the set ``W_T`` of words satisfying

* ``T |/= rho_i(x, x)`` for every ``i``, and
* ``T |= Exists(rho_i-) <= Exists(rho_{i+1})`` but
  ``T |/= rho_i <= rho_{i+1}-`` for every ``i < n``.

The *depth* of ``T`` is 0 when no user axiom has an existential on the
right-hand side, the maximal length of a word in ``W_T`` when that set
is finite, and infinity otherwise.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Tuple

from .axioms import ConceptInclusion
from .terms import Concept, Exists, Role

#: A word of ``W_T`` — a tuple of roles (the empty tuple is ``epsilon``).
Word = Tuple[Role, ...]

EPSILON: Word = ()


def is_letter(tbox, role: Role) -> bool:
    """True if ``role`` may occur in a word of ``W_T`` (not reflexive)."""
    return not tbox.is_reflexive(role)


def successor_roles(tbox, role: Role) -> List[Role]:
    """Roles that may follow ``role`` inside a word of ``W_T``."""
    result = []
    for candidate in sorted(tbox.roles):
        if not is_letter(tbox, candidate):
            continue
        if not tbox.entails_concept(Exists(role.inverse()), Exists(candidate)):
            continue
        if tbox.entails_role(role, candidate.inverse()):
            continue
        result.append(candidate)
    return result


def initial_roles(tbox, concept: Concept) -> List[Role]:
    """Roles ``rho`` with ``T |= concept <= Exists(rho)`` usable as a
    first letter (``rho`` not entailed reflexive)."""
    return [role for role in sorted(tbox.roles)
            if is_letter(tbox, role)
            and tbox.entails_concept(concept, Exists(role))]


def successor_graph(tbox) -> Dict[Role, List[Role]]:
    """The one-step successor relation on letters of ``W_T``."""
    letters = [role for role in sorted(tbox.roles) if is_letter(tbox, role)]
    return {role: successor_roles(tbox, role) for role in letters}


def _has_existential_rhs(tbox) -> bool:
    for axiom in tbox.user_axioms:
        if isinstance(axiom, ConceptInclusion) and isinstance(
                axiom.rhs, Exists):
            return True
    return False


def chase_depth(tbox):
    """The longest generating word in ``W_T`` (an ``int`` or ``math.inf``).

    Unlike :func:`ontology_depth`, this has no special case for depth-0
    ontologies: normalisation axioms ``A_rho <= Exists(rho)`` introduce
    words of length 1, which the canonical model must contain.
    """
    graph = successor_graph(tbox)
    order, on_cycle = _topological_order(graph)
    if on_cycle:
        return math.inf
    longest: Dict[Role, int] = {}
    for role in reversed(order):
        longest[role] = 1 + max(
            (longest[succ] for succ in graph[role]), default=0)
    return max(longest.values(), default=0)


def letter_count(tbox) -> int:
    """The number of letters available to ``W_T`` words."""
    return sum(1 for role in tbox.roles if is_letter(tbox, role))


def ontology_depth(tbox):
    """The existential depth of ``tbox`` (an ``int`` or ``math.inf``).

    Computed as the longest path in the letter-successor graph; any cycle
    makes ``W_T`` infinite.  Per the paper's convention, an ontology whose
    user axioms have no existential right-hand sides has depth 0 even
    though normalisation may introduce words of length 1.
    """
    if not _has_existential_rhs(tbox):
        return 0
    return chase_depth(tbox)


def _topological_order(graph: Dict[Role, List[Role]]):
    """Topological order of ``graph``; also reports whether it has a cycle."""
    state: Dict[Role, int] = {}
    order: List[Role] = []
    has_cycle = False

    def visit(node: Role) -> None:
        nonlocal has_cycle
        stack = [(node, iter(graph.get(node, ())))]
        state[node] = 1
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                mark = state.get(succ, 0)
                if mark == 1:
                    has_cycle = True
                elif mark == 0:
                    state[succ] = 1
                    stack.append((succ, iter(graph.get(succ, ()))))
                    advanced = True
                    break
            if not advanced:
                state[current] = 2
                order.append(current)
                stack.pop()

    for node in graph:
        if state.get(node, 0) == 0:
            visit(node)
    order.reverse()
    return order, has_cycle


def words(tbox, max_length) -> Iterator[Word]:
    """Enumerate the words of ``W_T`` of length at most ``max_length``,
    including the empty word ``epsilon``."""
    yield EPSILON
    if max_length <= 0:
        return
    graph = successor_graph(tbox)
    stack: List[Word] = [(role,) for role in graph]
    while stack:
        word = stack.pop()
        yield word
        if len(word) < max_length:
            for succ in graph[word[-1]]:
                stack.append(word + (succ,))


def extensions(tbox, word: Word, concept_of_root: Concept,
               max_length: int) -> Iterator[Word]:
    """Words of ``W_T`` extending ``word`` by one letter, where the empty
    word is rooted at an element satisfying ``concept_of_root``."""
    if len(word) >= max_length:
        return
    if word:
        candidates = successor_roles(tbox, word[-1])
    else:
        candidates = initial_roles(tbox, concept_of_root)
    for role in candidates:
        yield word + (role,)


def word_str(word: Word) -> str:
    """Human-readable form of a word (``'eps'`` for the empty word)."""
    if not word:
        return "eps"
    return ".".join(str(role) for role in word)
