"""OWL 2 QL axiom forms (Section 2 of the paper).

An ontology is a finite set of sentences of the forms::

    forall x (tau(x) -> tau'(x))            ConceptInclusion
    forall x (tau(x) & tau'(x) -> bottom)   ConceptDisjointness
    forall xy (rho(x,y) -> rho'(x,y))       RoleInclusion
    forall xy (rho(x,y) & rho'(x,y) -> bottom)  RoleDisjointness
    forall x rho(x,x)                       Reflexivity
    forall x (rho(x,x) -> bottom)           Irreflexivity
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .terms import Concept, Role


@dataclass(frozen=True)
class ConceptInclusion:
    """``tau(x) -> tau'(x)``."""

    lhs: Concept
    rhs: Concept

    def __str__(self) -> str:
        return f"{self.lhs} <= {self.rhs}"


@dataclass(frozen=True)
class RoleInclusion:
    """``rho(x, y) -> rho'(x, y)``."""

    lhs: Role
    rhs: Role

    def __str__(self) -> str:
        return f"{self.lhs} <= {self.rhs}"


@dataclass(frozen=True)
class ConceptDisjointness:
    """``tau(x) & tau'(x) -> bottom``."""

    lhs: Concept
    rhs: Concept

    def __str__(self) -> str:
        return f"{self.lhs} & {self.rhs} <= bottom"


@dataclass(frozen=True)
class RoleDisjointness:
    """``rho(x, y) & rho'(x, y) -> bottom``."""

    lhs: Role
    rhs: Role

    def __str__(self) -> str:
        return f"{self.lhs} & {self.rhs} <= bottom"


@dataclass(frozen=True)
class Reflexivity:
    """``forall x rho(x, x)``."""

    role: Role

    def __str__(self) -> str:
        return f"refl({self.role})"


@dataclass(frozen=True)
class Irreflexivity:
    """``rho(x, x) -> bottom``."""

    role: Role

    def __str__(self) -> str:
        return f"irrefl({self.role})"


Axiom = Union[
    ConceptInclusion,
    RoleInclusion,
    ConceptDisjointness,
    RoleDisjointness,
    Reflexivity,
    Irreflexivity,
]
