"""Vocabulary terms of OWL 2 QL ontologies.

The paper (Section 2) works with unary predicates ``A`` and binary
predicates ``P`` together with their inverses ``P-``.  *Roles* are binary
predicates or inverses thereof, and *basic concepts* ``tau`` are either
atomic concepts ``A(x)``, existential restrictions ``exists y rho(x, y)``
or the top concept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class Role:
    """A binary predicate or its inverse (``P`` or ``P-``).

    ``Role('P').inverse()`` is ``P-`` and taking the inverse twice gives
    back ``P`` (the paper's convention ``P-- = P``).
    """

    name: str
    inverted: bool = False

    def inverse(self) -> "Role":
        """The inverse role ``rho-``."""
        return Role(self.name, not self.inverted)

    @property
    def is_inverse(self) -> bool:
        return self.inverted

    def __str__(self) -> str:
        return self.name + ("-" if self.inverted else "")

    def __repr__(self) -> str:
        return f"Role({self})"

    @staticmethod
    def parse(text: str) -> "Role":
        """Parse ``"P"`` or ``"P-"`` into a :class:`Role`."""
        text = text.strip()
        if text.endswith("-"):
            return Role(text[:-1], True)
        return Role(text)


@dataclass(frozen=True, order=True)
class Atomic:
    """An atomic concept ``A(x)``."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Atomic({self.name})"


@dataclass(frozen=True, order=True)
class Exists:
    """The basic concept ``exists y rho(x, y)`` for a role ``rho``."""

    role: Role

    def __str__(self) -> str:
        return f"E{self.role}"

    def __repr__(self) -> str:
        return f"Exists({self.role})"


@dataclass(frozen=True, order=True)
class Top:
    """The top concept, true of every element of the active domain."""

    def __str__(self) -> str:
        return "T"

    def __repr__(self) -> str:
        return "Top()"


TOP = Top()

#: A basic concept as defined by the grammar in Section 2 of the paper.
Concept = Union[Atomic, Exists, Top]


def parse_concept(text: str) -> Concept:
    """Parse ``"A"``, ``"EP"``, ``"EP-"`` or ``"T"`` into a concept.

    The ``E`` prefix stands for the existential quantifier (``EP`` is
    ``exists y P(x, y)``).
    """
    text = text.strip()
    if text == "T":
        return TOP
    if text.startswith("E"):
        return Exists(Role.parse(text[1:]))
    return Atomic(text)
