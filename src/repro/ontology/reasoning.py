"""Saturation-based reasoning for OWL 2 QL TBoxes.

OWL 2 QL has no conjunction on the left-hand side of (positive) axioms,
so positive entailments between basic concepts and between roles reduce
to graph reachability over the axiom-induced hierarchies:

* the *role hierarchy* is closed under inverses
  (``rho <= sigma`` entails ``rho- <= sigma-``);
* the *concept hierarchy* contains, besides the stated concept
  inclusions, the edge ``Exists(rho) <= Exists(sigma)`` for every
  entailed role inclusion ``rho <= sigma`` and ``Top <= Exists(rho)``
  for every entailed-reflexive role ``rho``.

These are exactly the entailment queries used throughout the paper:
``T |= tau -> tau'``, ``T |= rho -> rho'`` and ``T |= rho(x, x)``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set

from .axioms import (
    Axiom,
    ConceptDisjointness,
    ConceptInclusion,
    Irreflexivity,
    Reflexivity,
    RoleDisjointness,
    RoleInclusion,
)
from .terms import TOP, Atomic, Concept, Exists, Role


def _closure(adjacency: Dict) -> Dict:
    """Reflexive-transitive closure of an adjacency dict (BFS per node)."""
    closed = {}
    for start in adjacency:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for succ in adjacency.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        closed[start] = frozenset(seen)
    return closed


class Saturation:
    """Precomputed entailment relations for a set of axioms.

    The universe of roles and concepts is fixed at construction time; all
    entailment queries are then dictionary lookups.
    """

    def __init__(self, axioms: Iterable[Axiom], roles: Iterable[Role],
                 atomic_names: Iterable[str]):
        self.axioms = list(axioms)
        self.roles: FrozenSet[Role] = frozenset(roles)
        self._build_role_hierarchy()
        self._build_reflexive()
        self._build_concept_hierarchy(atomic_names)
        self._build_disjointness()

    # -- role hierarchy ------------------------------------------------

    def _build_role_hierarchy(self) -> None:
        adjacency: Dict[Role, Set[Role]] = {role: set() for role in self.roles}
        for axiom in self.axioms:
            if isinstance(axiom, RoleInclusion):
                adjacency.setdefault(axiom.lhs, set()).add(axiom.rhs)
                adjacency.setdefault(axiom.lhs.inverse(), set()).add(
                    axiom.rhs.inverse())
                adjacency.setdefault(axiom.rhs, set())
                adjacency.setdefault(axiom.rhs.inverse(), set())
        self._role_supers = _closure(adjacency)

    def role_supers(self, role: Role) -> FrozenSet[Role]:
        """All roles ``sigma`` with ``T |= role <= sigma``."""
        return self._role_supers.get(role, frozenset({role}))

    def entails_role(self, sub: Role, sup: Role) -> bool:
        """``T |= sub(x, y) -> sup(x, y)``."""
        return sup in self.role_supers(sub)

    def role_subs(self, role: Role) -> FrozenSet[Role]:
        """All roles ``sigma`` with ``T |= sigma <= role``."""
        return frozenset(
            sub for sub in self._role_supers if role in self._role_supers[sub])

    # -- reflexivity ----------------------------------------------------

    def _build_reflexive(self) -> None:
        base: Set[Role] = set()
        for axiom in self.axioms:
            if isinstance(axiom, Reflexivity):
                base.add(axiom.role)
                base.add(axiom.role.inverse())
        reflexive: Set[Role] = set()
        for role in base:
            reflexive |= self.role_supers(role)
            reflexive |= {sup.inverse() for sup in self.role_supers(role)}
        self._reflexive = frozenset(reflexive)

    def is_reflexive(self, role: Role) -> bool:
        """``T |= role(x, x)``."""
        return role in self._reflexive

    # -- concept hierarchy ----------------------------------------------

    def _build_concept_hierarchy(self, atomic_names: Iterable[str]) -> None:
        universe: Set[Concept] = {TOP}
        universe.update(Atomic(name) for name in atomic_names)
        universe.update(Exists(role) for role in self.roles)
        adjacency: Dict[Concept, Set[Concept]] = {c: set() for c in universe}
        for axiom in self.axioms:
            if isinstance(axiom, ConceptInclusion):
                adjacency.setdefault(axiom.lhs, set()).add(axiom.rhs)
                adjacency.setdefault(axiom.rhs, set())
        for role in self.roles:
            for sup in self.role_supers(role):
                adjacency.setdefault(Exists(role), set()).add(Exists(sup))
        for role in self._reflexive:
            adjacency.setdefault(TOP, set()).add(Exists(role))
        for concept in list(adjacency):
            adjacency[concept].add(TOP)
        self._concept_supers = _closure(adjacency)
        self._concept_universe = frozenset(adjacency)

    @property
    def concepts(self) -> FrozenSet[Concept]:
        """All basic concepts over the ontology signature."""
        return self._concept_universe

    def concept_supers(self, concept: Concept) -> FrozenSet[Concept]:
        """All basic concepts ``tau'`` with ``T |= concept <= tau'``."""
        return self._concept_supers.get(concept, frozenset({concept, TOP}))

    def entails_concept(self, sub: Concept, sup: Concept) -> bool:
        """``T |= sub(x) -> sup(x)``."""
        if sup == TOP:
            return True
        return sup in self.concept_supers(sub)

    def concept_subs(self, concept: Concept) -> FrozenSet[Concept]:
        """All basic concepts ``tau`` with ``T |= tau <= concept``."""
        return frozenset(sub for sub in self._concept_supers
                         if concept in self._concept_supers[sub])

    # -- disjointness ----------------------------------------------------

    def _build_disjointness(self) -> None:
        self.concept_disjointness = [
            ax for ax in self.axioms if isinstance(ax, ConceptDisjointness)]
        self.role_disjointness = [
            ax for ax in self.axioms if isinstance(ax, RoleDisjointness)]
        self.irreflexivities = [
            ax for ax in self.axioms if isinstance(ax, Irreflexivity)]

    def concepts_clash(self, entailed: Set[Concept]) -> bool:
        """True if the set of concepts satisfied by one element clashes."""
        for axiom in self.concept_disjointness:
            if axiom.lhs in entailed and axiom.rhs in entailed:
                return True
        return False

    def roles_clash(self, entailed: Set[Role]) -> bool:
        """True if the set of roles holding of one pair clashes."""
        for axiom in self.role_disjointness:
            if axiom.lhs in entailed and axiom.rhs in entailed:
                return True
        for axiom in self.irreflexivities:
            # rho(x, x) -> bottom fires on a pair (u, u); loops carry both
            # polarities, which is handled by the caller passing them in.
            pass
        return False

    def loop_clash(self, entailed: Set[Role]) -> bool:
        """True if a loop ``(u, u)`` satisfying these roles clashes."""
        if self.roles_clash(entailed):
            return True
        for axiom in self.irreflexivities:
            if axiom.role in entailed or axiom.role.inverse() in entailed:
                return True
        return False
