"""OWL 2 QL ontology substrate: terms, axioms, TBoxes and reasoning."""

from .axioms import (
    Axiom,
    ConceptDisjointness,
    ConceptInclusion,
    Irreflexivity,
    Reflexivity,
    RoleDisjointness,
    RoleInclusion,
)
from .depth import EPSILON, Word, word_str, words
from .tbox import TBox, surrogate_name
from .terms import TOP, Atomic, Concept, Exists, Role, Top, parse_concept

__all__ = [
    "Axiom",
    "Atomic",
    "Concept",
    "ConceptDisjointness",
    "ConceptInclusion",
    "EPSILON",
    "Exists",
    "Irreflexivity",
    "Reflexivity",
    "Role",
    "RoleDisjointness",
    "RoleInclusion",
    "TBox",
    "TOP",
    "Top",
    "Word",
    "parse_concept",
    "surrogate_name",
    "word_str",
    "words",
]
