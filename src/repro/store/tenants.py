"""Tenancy: namespaces, quotas and per-tenant rate limits.

A *tenant* is one isolated consumer of a shared service process.  The
manager provides the three ingredients of fair multi-tenant serving:

* **namespaces** — dataset and ontology names are scoped per tenant
  (``scope("acme", "orders") == "acme::orders"``), so two tenants can
  both own a dataset called ``orders`` without seeing each other's
  data.  The default tenant (empty name) keeps today's un-prefixed
  names, so existing clients and the wire protocol are unchanged;
  ``::`` is reserved as the separator and rejected inside names.
* **quotas** — hard per-tenant ceilings on datasets, stored facts and
  standing subscriptions (:class:`TenantQuota`); exceeding one raises
  :class:`QuotaError`, which the HTTP layer maps to a structured 403.
* **rate limits** — a token bucket per tenant (``rate_limit`` requests
  per second, ``rate_burst`` of headroom).  An empty bucket raises
  :class:`RateLimited` with the exact ``retry_after`` until the next
  token, which the HTTP layer surfaces as the same 429 +
  ``Retry-After`` shape the queue-depth backpressure already uses —
  one noisy tenant is throttled without touching anyone else's
  latency.

All counter updates take one small lock; nothing here ever holds a
dataset lock, so there is no ordering hazard against the service.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..obs import Observability

#: The unscoped tenant every existing caller implicitly uses.
DEFAULT_TENANT = ""

#: Reserved namespace separator (``<tenant>::<name>``).
SEPARATOR = "::"

_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.\-]{0,63}$")


class QuotaError(ValueError):
    """A tenant asked for more than its quota allows (HTTP 403)."""

    def __init__(self, tenant: str, resource: str, limit: int,
                 requested: int):
        super().__init__(
            f"tenant {tenant or 'default'!r} quota exceeded: "
            f"{resource} limit is {limit}, request would need "
            f"{requested}")
        self.tenant = tenant
        self.resource = resource
        self.limit = limit
        self.requested = requested


class RateLimited(ValueError):
    """A tenant exceeded its request rate (HTTP 429 + ``Retry-After``)."""

    def __init__(self, tenant: str, retry_after: float):
        super().__init__(
            f"tenant {tenant or 'default'!r} rate limit exceeded; "
            f"retry in {retry_after:.2f}s")
        self.tenant = tenant
        self.retry_after = retry_after


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant ceilings; ``None`` disables that limit."""

    max_datasets: Optional[int] = None
    max_facts: Optional[int] = None
    max_subscriptions: Optional[int] = None
    #: Sustained requests/second admitted per tenant (``None`` = no
    #: rate limiting); ``rate_burst`` tokens of headroom on top.
    rate_limit: Optional[float] = None
    rate_burst: float = 20.0

    def __post_init__(self):
        for name in ("max_datasets", "max_facts", "max_subscriptions"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive (or None)")
        if self.rate_burst < 1:
            raise ValueError("rate_burst must be >= 1")


@dataclass
class _TenantState:
    """Live accounting for one tenant (guarded by the manager lock)."""

    datasets: int = 0
    facts: int = 0
    subscriptions: int = 0
    requests: int = 0
    rate_limited: int = 0
    quota_rejections: int = 0
    #: Token bucket: refilled lazily on each admission check.
    tokens: float = 0.0
    refilled_at: float = field(default_factory=time.monotonic)


class TenantManager:
    """Namespace scoping plus quota and rate-limit accounting.

    One instance lives on each :class:`~repro.service.service.OMQService`
    (``service.tenants``); the service charges it on registration,
    update, and subscribe paths, and the shared protocol layer calls
    :meth:`throttle` per admitted request so both HTTP front-ends
    enforce identical limits.
    """

    def __init__(self, quota: Optional[TenantQuota] = None,
                 obs: Optional[Observability] = None):
        self.quota = quota or TenantQuota()
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantState] = {}
        # the per-tenant ints in _TenantState stay authoritative for
        # /stats; the labeled families mirror them for /metrics
        self._obs = obs or Observability()

    # -- namespaces ----------------------------------------------------------

    @staticmethod
    def validate(tenant: str) -> str:
        """``tenant`` if it is a legal tenant name (the default tenant
        or ``[A-Za-z0-9][A-Za-z0-9_.-]{0,63}``)."""
        if tenant == DEFAULT_TENANT:
            return tenant
        if not isinstance(tenant, str) or not _TENANT_NAME.match(tenant):
            raise ValueError(
                f"invalid tenant name {tenant!r}: expected "
                "[A-Za-z0-9][A-Za-z0-9_.-]{0,63}")
        return tenant

    @classmethod
    def scope(cls, tenant: str, name: str) -> str:
        """The registry key for ``name`` owned by ``tenant``.

        The default tenant keeps bare names (today's behavior); other
        tenants get ``<tenant>::<name>``.  ``::`` is reserved — a name
        containing it is rejected for every tenant, so a scoped key can
        never collide with a default-tenant name.
        """
        cls.validate(tenant)
        if not name or not isinstance(name, str):
            raise ValueError(f"invalid dataset/ontology name {name!r}")
        if SEPARATOR in name:
            raise ValueError(
                f"invalid name {name!r}: {SEPARATOR!r} is reserved as "
                "the tenant separator")
        if tenant == DEFAULT_TENANT:
            return name
        return f"{tenant}{SEPARATOR}{name}"

    @staticmethod
    def split(scoped: str) -> tuple:
        """``(tenant, name)`` back from a registry key."""
        tenant, separator, name = scoped.partition(SEPARATOR)
        if not separator:
            return DEFAULT_TENANT, scoped
        return tenant, name

    # -- rate limiting -------------------------------------------------------

    def throttle(self, tenant: str, cost: float = 1.0) -> None:
        """Admit one request against the tenant's token bucket, or
        raise :class:`RateLimited` with the seconds until a token is
        available.  No-op when ``rate_limit`` is unset."""
        rate = self.quota.rate_limit
        if rate is None:
            with self._lock:
                self._state(tenant).requests += 1
            self._obs.tenant_requests.labels(
                tenant=tenant or "default").inc()
            return
        burst = self.quota.rate_burst
        now = time.monotonic()
        with self._lock:
            state = self._state(tenant)
            state.tokens = min(
                burst, state.tokens + (now - state.refilled_at) * rate)
            state.refilled_at = now
            if state.tokens >= cost:
                state.tokens -= cost
                state.requests += 1
                admitted = True
            else:
                state.rate_limited += 1
                retry_after = (cost - state.tokens) / rate
                admitted = False
        label = tenant or "default"
        if admitted:
            self._obs.tenant_requests.labels(tenant=label).inc()
            return
        self._obs.tenant_rate_limited.labels(tenant=label).inc()
        raise RateLimited(tenant, retry_after)

    # -- quotas --------------------------------------------------------------

    def charge_dataset(self, tenant: str, facts: int,
                       replacing_facts: Optional[int] = None,
                       enforce: bool = True) -> None:
        """Account (and, unless restoring, enforce) one dataset
        registration of ``facts`` atoms; ``replacing_facts`` is the
        size of the dataset being replaced, released in the same
        breath so a replace is never double-counted."""
        with self._lock:
            state = self._state(tenant)
            new_datasets = state.datasets + (1 if replacing_facts is None
                                             else 0)
            new_facts = state.facts + facts - (replacing_facts or 0)
            if enforce:
                self._check(tenant, state, "datasets", new_datasets,
                            self.quota.max_datasets)
                self._check(tenant, state, "facts", new_facts,
                            self.quota.max_facts)
            state.datasets = new_datasets
            state.facts = max(0, new_facts)

    def release_dataset(self, tenant: str, facts: int) -> None:
        with self._lock:
            state = self._state(tenant)
            state.datasets = max(0, state.datasets - 1)
            state.facts = max(0, state.facts - facts)

    def charge_facts(self, tenant: str, upper_bound: int) -> None:
        """Pre-admission check for an update that may add up to
        ``upper_bound`` facts (duplicates make the true growth
        smaller; the bound errs on rejection at the very boundary)."""
        if self.quota.max_facts is None or upper_bound <= 0:
            return
        with self._lock:
            state = self._state(tenant)
            self._check(tenant, state, "facts",
                        state.facts + upper_bound, self.quota.max_facts)

    def adjust_facts(self, tenant: str, delta: int) -> None:
        """Post-update accounting with the *effective* fact delta."""
        if not delta:
            return
        with self._lock:
            state = self._state(tenant)
            state.facts = max(0, state.facts + delta)

    def charge_subscription(self, tenant: str, enforce: bool = True) -> None:
        with self._lock:
            state = self._state(tenant)
            if enforce:
                self._check(tenant, state, "subscriptions",
                            state.subscriptions + 1,
                            self.quota.max_subscriptions)
            state.subscriptions += 1

    def release_subscription(self, tenant: str) -> None:
        with self._lock:
            state = self._state(tenant)
            state.subscriptions = max(0, state.subscriptions - 1)

    def _check(self, tenant: str, state: _TenantState, resource: str,
               requested: int, limit: Optional[int]) -> None:
        if limit is not None and requested > limit:
            state.quota_rejections += 1
            self._obs.tenant_quota_rejections.labels(
                tenant=tenant or "default").inc()
            raise QuotaError(tenant, resource, limit, requested)

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState(
                tokens=self.quota.rate_burst)
        return state

    # -- stats ---------------------------------------------------------------

    def tenant_names(self) -> tuple:
        with self._lock:
            return tuple(sorted(self._tenants))

    def stats(self) -> Dict[str, object]:
        """The ``"tenants"`` block of ``/stats``: live usage counters
        per tenant plus the configured quota."""
        quota = {"max_datasets": self.quota.max_datasets,
                 "max_facts": self.quota.max_facts,
                 "max_subscriptions": self.quota.max_subscriptions,
                 "rate_limit": self.quota.rate_limit,
                 "rate_burst": self.quota.rate_burst}
        with self._lock:
            per_tenant = {
                tenant or "default": {
                    "datasets": state.datasets,
                    "facts": state.facts,
                    "subscriptions": state.subscriptions,
                    "requests": state.requests,
                    "rate_limited": state.rate_limited,
                    "quota_rejections": state.quota_rejections}
                for tenant, state in sorted(self._tenants.items())}
        return {"quota": quota, "per_tenant": per_tenant}
