""":class:`DatasetStore`: the service's durable state, per tenant.

One SQLite file per tenant (see :mod:`repro.store.sqlite` for the WAL
and pooling recipe) holding everything a restarted server needs to
warm-start that tenant:

* ``datasets`` — name, shard configuration and the current epoch;
* ``facts`` — the ABox atoms, one row per ground atom (unary atoms
  store an empty second argument; constants never parse to the empty
  string, so the encoding is unambiguous);
* ``tboxes`` — named ontologies in the surface syntax;
* ``subscriptions`` — standing queries: ontology text, CQ text,
  answer variables, serialized options, engine, and the epoch at
  registration (on restore the subscription is re-materialized from
  the restored facts and re-armed at the dataset's persisted epoch).

Write discipline: registration and checkpoints rewrite a dataset
wholesale; :meth:`apply_delta` appends only the update's atoms plus
the new epoch.  Deltas are executed as ``DELETE`` then ``INSERT OR
IGNORE`` — both idempotent — in the same order the in-memory update
applies them, so replaying the requested atoms reproduces exactly the
final in-memory state even when requests carry duplicates or no-ops.
Every mutation runs in one transaction: a crash mid-update rolls back
to the previous consistent state instead of persisting a torn write.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..data.abox import GroundAtom
from .sqlite import SQLitePool
from .tenants import DEFAULT_TENANT, TenantManager

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS datasets (
    name   TEXT PRIMARY KEY,
    shards INTEGER NOT NULL DEFAULT 0,
    epoch  INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS facts (
    dataset   TEXT NOT NULL,
    predicate TEXT NOT NULL,
    arity     INTEGER NOT NULL,
    arg0      TEXT NOT NULL,
    arg1      TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (dataset, predicate, arity, arg0, arg1)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS tboxes (
    name TEXT PRIMARY KEY,
    text TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS subscriptions (
    id          TEXT PRIMARY KEY,
    dataset     TEXT NOT NULL,
    tbox_text   TEXT NOT NULL,
    query       TEXT NOT NULL,
    answer_vars TEXT NOT NULL,
    options     TEXT NOT NULL,
    engine      TEXT NOT NULL,
    epoch       INTEGER NOT NULL DEFAULT 0
);
"""

#: Filename of the default (unnamed) tenant.  Validated tenant names
#: must start with an alphanumeric, so the underscore cannot collide.
_DEFAULT_FILE = "_default"


@dataclass(frozen=True)
class StoredSubscription:
    """One persisted standing query, in wire-text form."""

    subscription_id: str
    dataset: str
    tbox_text: str
    query: str
    answer_vars: Tuple[str, ...]
    options: Dict[str, object]
    engine: str
    epoch: int = 0


@dataclass
class TenantSnapshot:
    """Everything one tenant file holds, decoded for restore."""

    tenant: str
    #: name -> (atoms, shards, epoch)
    datasets: Dict[str, Tuple[List[GroundAtom], int, int]] = field(
        default_factory=dict)
    tboxes: Dict[str, str] = field(default_factory=dict)
    subscriptions: List[StoredSubscription] = field(default_factory=list)


def _atom_rows(dataset: str, atoms: Iterable[GroundAtom]):
    for predicate, args in atoms:
        if len(args) == 1:
            yield (dataset, predicate, 1, args[0], "")
        else:
            yield (dataset, predicate, 2, args[0], args[1])


class DatasetStore:
    """Durable multi-tenant dataset storage under one directory.

    Thread-safe: every write is one SQLite transaction on a pooled
    connection, and the service only writes a given dataset under its
    writer lock, so per-file write contention is already serialized
    upstream.  ``pool_size`` bounds connections per tenant file.
    """

    def __init__(self, data_dir: str, pool_size: int = 4):
        self.data_dir = os.path.abspath(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self._pool_size = pool_size
        self._pools: Dict[str, SQLitePool] = {}
        self._lock = threading.Lock()
        self._writes = 0
        self._last_checkpoint: Optional[Dict[str, object]] = None

    # -- files and pools -----------------------------------------------------

    def path_for(self, tenant: str) -> str:
        TenantManager.validate(tenant)
        stem = _DEFAULT_FILE if tenant == DEFAULT_TENANT else tenant
        return os.path.join(self.data_dir, f"{stem}.db")

    def tenants(self) -> List[str]:
        """Every tenant with a store file on disk."""
        names = []
        for entry in sorted(os.listdir(self.data_dir)):
            if not entry.endswith(".db"):
                continue
            stem = entry[:-3]
            names.append(DEFAULT_TENANT if stem == _DEFAULT_FILE else stem)
        return names

    def _pool(self, tenant: str) -> SQLitePool:
        with self._lock:
            pool = self._pools.get(tenant)
            if pool is None:
                pool = SQLitePool(self.path_for(tenant),
                                  capacity=self._pool_size)
                self._pools[tenant] = pool
                with pool.connection() as connection:
                    with connection:
                        connection.executescript(_SCHEMA)
                        connection.execute(
                            "INSERT OR IGNORE INTO meta (key, value) "
                            "VALUES ('schema_version', ?)",
                            (str(SCHEMA_VERSION),))
            return pool

    def _count_write(self) -> None:
        with self._lock:
            self._writes += 1

    # -- writes --------------------------------------------------------------

    def save_dataset(self, tenant: str, name: str,
                     atoms: Iterable[GroundAtom], shards=0,
                     epoch: int = 0) -> None:
        """Persist a dataset wholesale (registration and checkpoints);
        one transaction replaces any previous facts and metadata.
        ``shards`` may be the string ``"auto"`` (SQLite's dynamic
        typing stores it in the integer column as-is)."""
        rows = list(_atom_rows(name, atoms))
        with self._pool(tenant).connection() as connection:
            with connection:
                connection.execute(
                    "DELETE FROM facts WHERE dataset = ?", (name,))
                connection.executemany(
                    "INSERT OR IGNORE INTO facts "
                    "(dataset, predicate, arity, arg0, arg1) "
                    "VALUES (?, ?, ?, ?, ?)", rows)
                connection.execute(
                    "INSERT INTO datasets (name, shards, epoch) "
                    "VALUES (?, ?, ?) ON CONFLICT(name) DO UPDATE SET "
                    "shards = excluded.shards, epoch = excluded.epoch",
                    (name, shards, epoch))
        self._count_write()

    def apply_delta(self, tenant: str, name: str,
                    inserts: Sequence[GroundAtom] = (),
                    deletes: Sequence[GroundAtom] = (),
                    epoch: int = 0) -> None:
        """Append one update — deletes first, then inserts, both
        idempotent — and advance the epoch, atomically."""
        with self._pool(tenant).connection() as connection:
            with connection:
                connection.executemany(
                    "DELETE FROM facts WHERE dataset = ? AND "
                    "predicate = ? AND arity = ? AND arg0 = ? AND "
                    "arg1 = ?", list(_atom_rows(name, deletes)))
                connection.executemany(
                    "INSERT OR IGNORE INTO facts "
                    "(dataset, predicate, arity, arg0, arg1) "
                    "VALUES (?, ?, ?, ?, ?)",
                    list(_atom_rows(name, inserts)))
                connection.execute(
                    "UPDATE datasets SET epoch = ? WHERE name = ?",
                    (epoch, name))
        self._count_write()

    def set_epoch(self, tenant: str, name: str, epoch: int) -> None:
        with self._pool(tenant).connection() as connection:
            with connection:
                connection.execute(
                    "UPDATE datasets SET epoch = ? WHERE name = ?",
                    (epoch, name))
        self._count_write()

    def delete_dataset(self, tenant: str, name: str) -> None:
        """Drop a dataset, its facts and its subscriptions."""
        with self._pool(tenant).connection() as connection:
            with connection:
                connection.execute(
                    "DELETE FROM facts WHERE dataset = ?", (name,))
                connection.execute(
                    "DELETE FROM datasets WHERE name = ?", (name,))
                connection.execute(
                    "DELETE FROM subscriptions WHERE dataset = ?",
                    (name,))
        self._count_write()

    def save_tbox(self, tenant: str, name: str, text: str) -> None:
        with self._pool(tenant).connection() as connection:
            with connection:
                connection.execute(
                    "INSERT INTO tboxes (name, text) VALUES (?, ?) "
                    "ON CONFLICT(name) DO UPDATE SET text = excluded.text",
                    (name, text))
        self._count_write()

    def save_subscription(self, tenant: str,
                          subscription: StoredSubscription) -> None:
        with self._pool(tenant).connection() as connection:
            with connection:
                connection.execute(
                    "INSERT INTO subscriptions (id, dataset, tbox_text, "
                    "query, answer_vars, options, engine, epoch) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?) "
                    "ON CONFLICT(id) DO UPDATE SET epoch = excluded.epoch",
                    (subscription.subscription_id, subscription.dataset,
                     subscription.tbox_text, subscription.query,
                     json.dumps(list(subscription.answer_vars)),
                     json.dumps(subscription.options),
                     subscription.engine, subscription.epoch))
        self._count_write()

    def delete_subscription(self, tenant: str,
                            subscription_id: str) -> None:
        with self._pool(tenant).connection() as connection:
            with connection:
                connection.execute(
                    "DELETE FROM subscriptions WHERE id = ?",
                    (subscription_id,))
        self._count_write()

    # -- reads ---------------------------------------------------------------

    def load_tenant(self, tenant: str) -> TenantSnapshot:
        snapshot = TenantSnapshot(tenant=tenant)
        with self._pool(tenant).connection() as connection:
            for name, shards, epoch in connection.execute(
                    "SELECT name, shards, epoch FROM datasets "
                    "ORDER BY name"):
                decoded = "auto" if shards == "auto" else int(shards)
                snapshot.datasets[name] = ([], decoded, int(epoch))
            for dataset, predicate, arity, arg0, arg1 in connection.execute(
                    "SELECT dataset, predicate, arity, arg0, arg1 "
                    "FROM facts"):
                entry = snapshot.datasets.get(dataset)
                if entry is None:  # orphan rows from a torn manual edit
                    continue
                args = (arg0,) if arity == 1 else (arg0, arg1)
                entry[0].append((predicate, args))
            for name, text in connection.execute(
                    "SELECT name, text FROM tboxes ORDER BY name"):
                snapshot.tboxes[name] = text
            for row in connection.execute(
                    "SELECT id, dataset, tbox_text, query, answer_vars, "
                    "options, engine, epoch FROM subscriptions "
                    "ORDER BY id"):
                snapshot.subscriptions.append(StoredSubscription(
                    subscription_id=row[0], dataset=row[1],
                    tbox_text=row[2], query=row[3],
                    answer_vars=tuple(json.loads(row[4])),
                    options=json.loads(row[5]), engine=row[6],
                    epoch=int(row[7])))
        return snapshot

    def load_all(self) -> Dict[str, TenantSnapshot]:
        return {tenant: self.load_tenant(tenant)
                for tenant in self.tenants()}

    # -- lifecycle -----------------------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Truncate every open WAL into its main file and record the
        high-water epoch, so a clean shutdown leaves nothing to replay
        and ``/health`` can report the last durable point."""
        max_epoch = 0
        datasets = 0
        with self._lock:
            pools = dict(self._pools)
        for pool in pools.values():
            with pool.connection() as connection:
                for epoch, in connection.execute(
                        "SELECT epoch FROM datasets"):
                    datasets += 1
                    max_epoch = max(max_epoch, int(epoch))
            pool.checkpoint()
        summary = {"at": time.time(), "tenants": len(pools),
                   "datasets": datasets, "epoch": max_epoch}
        with self._lock:
            self._last_checkpoint = summary
        return summary

    def status(self) -> Dict[str, object]:
        """The ``storage`` block of ``/health`` and ``/stats``."""
        with self._lock:
            status: Dict[str, object] = {
                "enabled": True,
                "data_dir": self.data_dir,
                "writes": self._writes,
                "open_tenants": len(self._pools)}
            checkpoint = self._last_checkpoint
        status["tenant_files"] = len(self.tenants())
        if checkpoint is not None:
            status["last_checkpoint_epoch"] = checkpoint["epoch"]
            status["last_checkpoint_at"] = checkpoint["at"]
        return status

    def close(self) -> None:
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.close()

    def __enter__(self) -> "DatasetStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"DatasetStore({self.data_dir!r}, "
                f"tenants={len(self.tenants())})")
