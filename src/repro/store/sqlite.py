"""Tuned SQLite plumbing for the dataset store.

One durable file per tenant, written from the service's single-writer
update path and read by pooled connections.  The tuning here is the
standard high-throughput embedded recipe:

* **WAL journal** — readers never block the writer and a crashed
  process loses at most the un-checkpointed WAL tail, never commits;
* **``synchronous=NORMAL``** — with WAL this fsyncs on checkpoint, not
  per transaction, which is the durability/throughput point WAL exists
  for (a power cut can lose the last transactions but never corrupts);
* **mmap + page cache** — reads of warm files skip the syscall path;
* **prepared-statement reuse** — every statement the store issues is a
  fixed template string, so ``sqlite3``'s per-connection statement
  cache (raised to :data:`CACHED_STATEMENTS`) compiles each one once
  per connection, not once per call;
* **``busy_timeout``** — concurrent pools on one file back off and
  retry instead of surfacing spurious ``database is locked`` errors.

:class:`SQLitePool` is a small thread-safe checkout/checkin pool: a
connection is used by one thread at a time (hence
``check_same_thread=False`` is safe) and survives across calls so both
the page cache and the statement cache stay warm.
"""

from __future__ import annotations

import sqlite3
import threading
from contextlib import contextmanager
from typing import Iterator, List

#: Per-connection prepared-statement cache (default 128): the store's
#: statement vocabulary is small, so every hot statement stays compiled.
CACHED_STATEMENTS = 256

#: Pragmas applied to every connection.  ``journal_mode=WAL`` is
#: persistent (a property of the file); the rest are per-connection.
PRAGMAS = (
    ("journal_mode", "WAL"),
    ("synchronous", "NORMAL"),
    ("mmap_size", str(128 * 1024 * 1024)),
    ("cache_size", str(-8 * 1024)),  # 8 MiB page cache
    ("temp_store", "MEMORY"),
    ("busy_timeout", "5000"),
)


def tuned_connection(path: str) -> sqlite3.Connection:
    """A connection to ``path`` with the store's pragma profile applied
    (WAL, relaxed fsync, mmap, in-memory temp store, busy timeout)."""
    connection = sqlite3.connect(path, check_same_thread=False,
                                 cached_statements=CACHED_STATEMENTS)
    for name, value in PRAGMAS:
        connection.execute(f"PRAGMA {name}={value}")
    return connection


class SQLitePool:
    """A bounded checkout/checkin pool of tuned connections to one file.

    SQLite connections are cheap but not free (each re-opens the file,
    re-reads the schema and starts with cold statement/page caches), so
    the store keeps up to ``capacity`` of them alive per tenant file.
    ``connection()`` blocks when all are in use — the store's callers
    are the service's bounded worker pools, so the wait is short and
    the total descriptor count stays bounded at
    ``tenants x capacity``.
    """

    def __init__(self, path: str, capacity: int = 4):
        self.path = path
        self._capacity = max(1, capacity)
        self._condition = threading.Condition()
        self._free: List[sqlite3.Connection] = []
        self._all: List[sqlite3.Connection] = []
        self._closed = False

    @contextmanager
    def connection(self) -> Iterator[sqlite3.Connection]:
        connection = self._checkout()
        try:
            yield connection
        finally:
            self._checkin(connection)

    def _checkout(self) -> sqlite3.Connection:
        with self._condition:
            while True:
                if self._closed:
                    raise RuntimeError(f"pool for {self.path} is closed")
                if self._free:
                    return self._free.pop()
                if len(self._all) < self._capacity:
                    connection = tuned_connection(self.path)
                    self._all.append(connection)
                    return connection
                self._condition.wait()

    def _checkin(self, connection: sqlite3.Connection) -> None:
        with self._condition:
            if self._closed:
                connection.close()
                return
            self._free.append(connection)
            self._condition.notify()

    def checkpoint(self) -> None:
        """Fold the WAL back into the main database file
        (``wal_checkpoint(TRUNCATE)``), so a clean shutdown leaves no
        WAL tail for the next process to replay."""
        with self.connection() as connection:
            connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        with self._condition:
            self._closed = True
            connections = list(self._all)
            self._all.clear()
            self._free.clear()
            self._condition.notify_all()
        for connection in connections:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - defensive
                pass

    def __repr__(self) -> str:
        with self._condition:
            return (f"SQLitePool({self.path!r}, open={len(self._all)}, "
                    f"free={len(self._free)})")
