"""Durable multi-tenant storage for the serving layer.

Everything the service holds in memory — registered datasets, named
ontologies, standing-query subscriptions — dies with the process, and
every client shares one undifferentiated resource pool.  This package
supplies the two missing production pieces:

* :mod:`repro.store.datastore` — :class:`DatasetStore`, durable
  dataset storage as one SQLite file per tenant (WAL mode, pooled
  connections, prepared-statement reuse, mmap/pragma tuning — see
  :mod:`repro.store.sqlite`).  Registration writes the full fact set;
  updates append only the delta plus the new epoch inside the
  service's existing writer lock; ``load_all`` hands a restarted
  server every tenant's datasets, ontologies and subscriptions so it
  warm-starts instead of starting empty.
* :mod:`repro.store.tenants` — :class:`TenantManager`, per-tenant
  namespaces (dataset and ontology names scoped by tenant; the
  default tenant keeps today's un-prefixed behavior), quotas
  (``max_datasets`` / ``max_facts`` / ``max_subscriptions``) and
  token-bucket rate limits that surface through the service's
  existing 429 + ``Retry-After`` backpressure shape.

:class:`~repro.service.service.OMQService` grows ``store=`` /
``quota=`` constructor knobs, ``snapshot()`` / ``restore()`` /
``checkpoint()``, and per-tenant accounting; ``repro serve
--data-dir DIR`` turns it all on for both HTTP front-ends.
"""

from .datastore import DatasetStore, StoredSubscription, TenantSnapshot
from .sqlite import SQLitePool, tuned_connection
from .tenants import (
    DEFAULT_TENANT,
    QuotaError,
    RateLimited,
    TenantManager,
    TenantQuota,
)

__all__ = [
    "DEFAULT_TENANT",
    "DatasetStore",
    "QuotaError",
    "RateLimited",
    "SQLitePool",
    "StoredSubscription",
    "TenantManager",
    "TenantQuota",
    "TenantSnapshot",
    "tuned_connection",
]
