"""repro: a reproduction of "The Complexity of Ontology-Based Data
Access with OWL 2 QL and Bounded Treewidth Queries" (Bienvenu, Kikot,
Kontchakov, Podolskii, Ryzhikov, Zakharyaschev - PODS 2017).

The package implements the paper end to end:

* an OWL 2 QL (DL-Lite_R) ontology language with saturation-based
  reasoning, generating words and ontology depth (:mod:`repro.ontology`);
* conjunctive queries, shape classification and tree decompositions
  (:mod:`repro.queries`);
* data instances and the canonical model / certain-answer semantics
  (:mod:`repro.data`, :mod:`repro.chase`);
* a nonrecursive-datalog engine with the Section 3.1 fragment analysis
  and the Lemma 3/Lemma 5 transformations (:mod:`repro.datalog`);
* the three optimal NDL rewriters **Lin**, **Log** and **Tw** of
  Section 3 plus UCQ/PerfectRef/Presto-style baselines
  (:mod:`repro.rewriting`);
* the Figure 1 complexity landscape (:mod:`repro.complexity`);
* the hardness gadgets of Sections 4-5 with reference solvers
  (:mod:`repro.hardness`);
* harnesses regenerating every table and figure
  (:mod:`repro.experiments`);
* the Section 6 optimisation layer: a unified evaluation layer with an
  interned, indexed in-memory database and session reuse
  (:mod:`repro.engine`, :class:`repro.rewriting.api.AnswerSession`),
  a SQL backend running rewritings as
  SQLite views/tables (:mod:`repro.sql`), magic sets
  (:mod:`repro.datalog.magic`), an NDL optimiser with Tw*-style
  inlining and emptiness pruning (:mod:`repro.datalog.optimize`) and
  the cost-based adaptive splitting strategy
  (:mod:`repro.rewriting.adaptive`);
* a serving layer (:mod:`repro.service`): a concurrent
  :class:`~repro.service.service.OMQService` with an LRU plan cache
  keyed up to variable renaming, batch answering with in-batch
  deduplication, incremental ABox updates that patch loaded engines in
  place, and a JSON/HTTP front-end (``python -m repro serve``);
* component-based data sharding (:mod:`repro.shard`): a
  :class:`~repro.shard.session.ShardedSession` partitions an ABox by
  connected components of its Gaifman graph into balanced shards and
  scatter-gathers compiled plans over per-shard engines (persistent
  worker processes for real parallelism), with incremental updates
  routed to the owning shards — ``shards=K`` at every layer
  (``AnswerOptions``, ``OMQService.register_dataset``, the CLI and
  HTTP front-ends);
* standing OMQs (:mod:`repro.standing`): subscriptions over a served
  dataset whose certain answers are maintained *incrementally* on
  every update — only the disjuncts of the rewriting touching the
  changed predicates (and, sharded, only the touched shards) are
  re-evaluated — with exact answer deltas pushed to clients over SSE
  or long-poll (``Client.subscribe`` / ``AsyncClient.subscribe``,
  ``python -m repro subscribe``);
* one compiled query pipeline (:mod:`repro.rewriting.plan`):
  :func:`compile` turns an OMQ plus one
  :class:`~repro.rewriting.plan.AnswerOptions` into a frozen,
  fingerprintable :class:`~repro.rewriting.plan.Plan` —
  ``plan.explain()`` reports the chosen method, rewriting
  size/width/depth and per-stage compile timings; ``plan.execute()``
  runs it over any ABox, session or engine and returns typed
  :class:`~repro.rewriting.plan.Answers` — and
  :class:`~repro.client.Client` is one facade over the embedded
  service and the HTTP server.

Quickstart (compile once, execute anywhere)::

    from repro import TBox, CQ, ABox, OMQ, compile

    tbox = TBox.parse("roles: P, R, S\\nP <= S\\nP <= R-")
    query = CQ.parse("R(x, y), S(y, z)", answer_vars=["x"])
    data = ABox.parse("R(a, b), A_P(b)")

    plan = compile(OMQ(tbox, query))       # prepare: rewrite once
    print(plan.explain()["rules"], plan.explain()["method"])
    print(plan.execute(data).answers)      # execute: over any data

The legacy one-shot :func:`answer` (and ``AnswerSession.answer``,
``OMQService.answer``) remain as thin wrappers over the same pipeline.
"""

from .chase import certain_answers, is_certain_answer
from .client import (
    AsyncClient,
    AsyncSubscription,
    Client,
    ServiceError,
    Subscription,
)
from .data import ABox
from .datalog import (
    NDLQuery,
    Program,
    evaluate,
    evaluate_magic,
    evaluate_on,
    magic_transform,
    optimize,
)
from .engine import (
    ENGINES,
    SQL_ENGINES,
    Database,
    available_engines,
    create_engine,
    engine_available,
)
from .ontology import Role, TBox
from .queries import CQ, chain_cq
from .rewriting import (
    METHODS,
    OMQ,
    AnswerOptions,
    Answers,
    AnswerSession,
    Plan,
    adaptive_rewrite,
    answer,
    answer_adaptive,
    compile_omq,
    lin_rewrite,
    log_rewrite,
    rewrite,
    tw_rewrite,
    ucq_rewrite,
)
from .service import OMQService, RewritingCache
from .shard import ShardedSession
from .sql import evaluate_sql
from .standing import AnswerDelta, StandingQuery, StandingRegistry

#: ``repro.compile(omq, options) -> Plan``: the prepare half of the
#: pipeline (the module-level name intentionally mirrors SQL's
#: PREPARE; the builtin ``compile`` stays reachable as
#: ``builtins.compile``).
compile = compile_omq

__version__ = "1.0.0"

__all__ = [
    "ABox",
    "AnswerDelta",
    "AnswerOptions",
    "Answers",
    "AnswerSession",
    "AsyncClient",
    "AsyncSubscription",
    "CQ",
    "Client",
    "ServiceError",
    "StandingQuery",
    "StandingRegistry",
    "Subscription",
    "Database",
    "ENGINES",
    "SQL_ENGINES",
    "available_engines",
    "engine_available",
    "METHODS",
    "NDLQuery",
    "OMQ",
    "OMQService",
    "Plan",
    "Program",
    "RewritingCache",
    "Role",
    "ShardedSession",
    "TBox",
    "adaptive_rewrite",
    "answer",
    "answer_adaptive",
    "certain_answers",
    "chain_cq",
    "compile",
    "compile_omq",
    "create_engine",
    "evaluate",
    "evaluate_magic",
    "evaluate_on",
    "evaluate_sql",
    "magic_transform",
    "optimize",
    "is_certain_answer",
    "lin_rewrite",
    "log_rewrite",
    "rewrite",
    "tw_rewrite",
    "ucq_rewrite",
]
