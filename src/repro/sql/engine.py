"""Evaluating NDL queries on SQL engines (SQLite, DuckDB).

:func:`evaluate_sql` is a drop-in alternative to
:func:`repro.datalog.evaluate.evaluate`: same inputs, same
:class:`~repro.datalog.evaluate.EvaluationResult` outputs.  Two modes:

* ``materialised=True`` computes every IDB predicate bottom-up into a
  table (the RDFox strategy of Appendix D.4) and reports the exact
  per-predicate relation sizes;
* ``materialised=False`` installs views and lets the DBMS's planner
  evaluate the goal lazily (the "views in standard DBMSs" suggestion of
  Section 6) — ``generated_tuples`` then counts only the goal relation,
  as nothing else is materialised.

:class:`SQLEngine` runs on the stdlib SQLite; :class:`DuckDBEngine`
subclasses it to target DuckDB's columnar executor (the ``duckdb``
package is imported lazily, so the module works without it).  Both
accept ``optimize_sql=True`` to run the :mod:`repro.sql.optimize` pass
pipeline before rendering.
"""

from __future__ import annotations

import sqlite3
from collections import OrderedDict
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..data.abox import ABox
from ..datalog.evaluate import EvaluationResult
from ..datalog.program import ADOM, NDLQuery
from ..obs.trace import span as _span
from .compile import SQLCompilation, compile_query
from .schema import (
    create_schema,
    load_abox,
    merged_arities,
    table_name,
)

#: Entries kept in each engine's compiled-SQL memo.
_COMPILATION_CACHE_SIZE = 64


class SQLEngine:
    """A loaded SQLite database ready to evaluate NDL queries.

    Reusable across queries over the same data: the EDB schema is
    loaded once and per-query views/tables are dropped after each
    evaluation.  Compilations are memoised per (query, mode), so
    re-evaluating the same plan (the session/service hot path) skips
    compilation and the optimizer entirely.
    """

    #: The SQL dialect this engine renders (see :mod:`repro.sql.ir`).
    dialect = "sqlite"

    def __init__(self, abox: ABox,
                 extra_relations: Optional[Mapping[str, Iterable[Tuple[str, ...]]]] = None,
                 edb_arities: Optional[Mapping[str, int]] = None):
        self.connection = self._connect()
        self._abox = abox
        self._extra = extra_relations
        self._loaded: Dict[str, int] = {}
        self._compilations: "OrderedDict[tuple, SQLCompilation]" = \
            OrderedDict()
        if edb_arities:
            self._ensure_loaded(dict(edb_arities))

    def _connect(self):
        """Open this engine's DBMS connection (dialect hook)."""
        # check_same_thread=False lets a service session pool hand the
        # engine from one worker thread to another; access is still
        # serialised by the pool (SQLite objects are never used from
        # two threads at once).
        return sqlite3.connect(":memory:", check_same_thread=False)

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- loading ------------------------------------------------------------

    def _ensure_loaded(self, arities: Dict[str, int]) -> None:
        """Create and fill the EDB tables that are not present yet."""
        missing = {predicate: arity
                   for predicate, arity in arities.items()
                   if predicate not in self._loaded}
        for predicate, arity in missing.items():
            known = self._loaded.get(predicate)
            if known is not None and known != arity:
                raise ValueError(
                    f"predicate {predicate!r} already loaded with arity "
                    f"{known}, requested {arity}")
        if not missing:
            return
        create_schema(self.connection, missing)
        load_abox(self.connection, self._abox, missing, self._extra)
        self._loaded.update(missing)

    # -- incremental updates -------------------------------------------------

    def apply_delta(self, inserts: Mapping[str, Iterable[Tuple[str, ...]]],
                    deletes: Mapping[str, Iterable[Tuple[str, ...]]],
                    adom_add: Iterable[str] = (),
                    adom_remove: Iterable[str] = ()) -> None:
        """Apply an effective data delta to the already-loaded tables.

        Deletions run before insertions.  Predicates whose tables have
        not been created yet need no work: they are loaded lazily from
        the (already-updated) backing ABox on the next evaluation.  The
        backing :class:`~repro.data.abox.ABox` must therefore be the
        same object the caller mutated — :class:`AnswerSession` updates
        it in place before calling this.
        """
        # validate everything before touching the connection so a bad
        # row cannot leave a half-applied (uncommitted) delta behind
        plan = []
        for phase, batch in (("delete", deletes), ("insert", inserts)):
            for predicate, rows in batch.items():
                arity = self._loaded.get(predicate)
                if arity is None:
                    continue
                arity = max(arity, 1)
                rows = [tuple(row) for row in rows]
                for row in rows:
                    if len(row) != arity:
                        raise ValueError(
                            f"predicate {predicate!r} loaded with arity "
                            f"{arity}, got row of length {len(row)}")
                if phase == "insert":
                    # keep base tables duplicate-free (the optimizer's
                    # DISTINCT elision relies on it): dedupe the batch
                    # and make each insert idempotent by deleting any
                    # existing copy first
                    rows = list(dict.fromkeys(rows))
                plan.append((phase, predicate, arity, rows))
        cursor = self.connection.cursor()
        try:
            for phase, predicate, arity, rows in plan:
                # inserts delete any existing copy first, so both
                # phases start with the same DELETE
                condition = " AND ".join(f"c{i} = ?" for i in range(arity))
                cursor.executemany(
                    f"DELETE FROM {table_name(predicate)} "
                    f"WHERE {condition}", rows)
                if phase == "insert":
                    placeholders = ", ".join("?" * arity)
                    cursor.executemany(
                        f"INSERT INTO {table_name(predicate)} "
                        f"VALUES ({placeholders})", rows)
            if ADOM in self._loaded:
                cursor.executemany(
                    f"DELETE FROM {table_name(ADOM)} WHERE c0 = ?",
                    [(constant,) for constant in adom_remove])
                cursor.executemany(
                    f"INSERT INTO {table_name(ADOM)} VALUES (?)",
                    [(constant,) for constant in adom_add])
        except Exception:
            self.connection.rollback()
            raise
        self.connection.commit()

    # -- evaluation ----------------------------------------------------------

    def _compile(self, query: NDLQuery, materialised: bool,
                 optimize_sql: bool) -> SQLCompilation:
        key = (query, materialised, optimize_sql)
        cached = self._compilations.get(key)
        if cached is not None:
            self._compilations.move_to_end(key)
            return cached
        with _span("sql-compile"):
            compilation = compile_query(query, materialised=materialised,
                                        optimize=optimize_sql,
                                        dialect=self.dialect)
        self._compilations[key] = compilation
        while len(self._compilations) > _COMPILATION_CACHE_SIZE:
            self._compilations.popitem(last=False)
        return compilation

    def evaluate(self, query: NDLQuery, materialised: bool = True,
                 optimize_sql: bool = False) -> EvaluationResult:
        """Evaluate one NDL query and drop its IDB objects afterwards."""
        arities = merged_arities(query, self._abox, self._extra)
        idb = query.program.idb_predicates
        self._ensure_loaded({predicate: arity
                             for predicate, arity in arities.items()
                             if predicate not in idb})
        compilation = self._compile(query, materialised, optimize_sql)
        cursor = self.connection.cursor()
        sizes: Dict[str, int] = {}
        try:
            for definition, statement in zip(compilation.ir.definitions,
                                             compilation.statements):
                cursor.execute(statement)
                if materialised and not definition.synthetic:
                    # synthetic (hoisted) relations are an evaluation
                    # artefact, not program predicates: keep the
                    # generated_tuples metric comparable across
                    # optimized and unoptimized runs
                    count = cursor.execute(
                        "SELECT COUNT(*) FROM "
                        f"{table_name(definition.predicate)}"
                    ).fetchone()[0]
                    sizes[definition.predicate] = count
            answers = self._goal_rows(cursor, compilation, query)
            if not materialised:
                sizes[query.goal] = len(answers)
        finally:
            self._drop(cursor, compilation)
        return EvaluationResult(frozenset(answers),
                                sum(sizes.values()), sizes)

    def _goal_rows(self, cursor, compilation: SQLCompilation,
                   query: NDLQuery) -> set:
        if query.goal not in compilation.idb_order:
            # goal is a plain EDB predicate: read its table directly
            arity = self._loaded.get(query.goal)
            if arity is None:
                return set()
            rows = cursor.execute(
                f"SELECT DISTINCT * FROM {table_name(query.goal)}"
            ).fetchall()
        else:
            rows = cursor.execute(compilation.goal_select).fetchall()
        if not query.answer_vars:
            return {()} if rows else set()
        return {tuple(row) for row in rows}

    def _drop(self, cursor, compilation: SQLCompilation) -> None:
        kind = "TABLE" if compilation.materialised else "VIEW"
        for predicate in reversed(compilation.idb_order):
            cursor.execute(
                f"DROP {kind} IF EXISTS {table_name(predicate)}")
        self.connection.commit()


class _DuckDBCursor:
    """A DB-API-shaped cursor over a DuckDB cursor.

    Smooths the two differences the engine relies on: ``execute``
    returns the cursor (for ``.execute(...).fetchone()`` chaining) and
    ``executemany`` tolerates empty row batches.
    """

    def __init__(self, raw):
        self._raw = raw

    def execute(self, sql, parameters=None):
        if parameters is None:
            self._raw.execute(sql)
        else:
            self._raw.execute(sql, parameters)
        return self

    def executemany(self, sql, rows):
        rows = list(rows)
        if rows:
            self._raw.executemany(sql, rows)
        return self

    def fetchone(self):
        return self._raw.fetchone()

    def fetchall(self):
        return self._raw.fetchall()


class _DuckDBConnection:
    """A DB-API-shaped wrapper over a DuckDB connection.

    DuckDB autocommits; ``commit``/``rollback`` outside an explicit
    transaction raise, so they are no-ops when the engine calls them
    at its usual transaction boundaries.
    """

    def __init__(self, raw):
        self._raw = raw

    def cursor(self) -> _DuckDBCursor:
        return _DuckDBCursor(self._raw.cursor())

    def commit(self) -> None:
        try:
            self._raw.commit()
        except Exception:
            pass

    def rollback(self) -> None:
        try:
            self._raw.rollback()
        except Exception:
            pass

    def close(self) -> None:
        self._raw.close()


class DuckDBEngine(SQLEngine):
    """The same evaluation strategy on DuckDB's columnar executor."""

    dialect = "duckdb"

    def _connect(self):
        try:
            import duckdb
        except ImportError as error:  # pragma: no cover - env dependent
            raise RuntimeError(
                "the DuckDB engine needs the optional 'duckdb' package "
                "(pip install duckdb)") from error
        return _DuckDBConnection(duckdb.connect(":memory:"))


def evaluate_sql(query: NDLQuery, abox: ABox,
                 extra_relations: Optional[Mapping[str, Iterable[Tuple[str, ...]]]] = None,
                 materialised: bool = True,
                 optimize_sql: bool = False) -> EvaluationResult:
    """One-shot SQL evaluation of ``(Pi, G)`` over ``abox``.

    Semantically identical to :func:`repro.datalog.evaluate.evaluate`
    (the property tests check this); use :class:`SQLEngine` directly to
    amortise data loading across many queries.
    """
    with SQLEngine(abox, extra_relations) as engine:
        return engine.evaluate(query, materialised=materialised,
                               optimize_sql=optimize_sql)
