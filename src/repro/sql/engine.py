"""Evaluating NDL queries on SQLite.

:func:`evaluate_sql` is a drop-in alternative to
:func:`repro.datalog.evaluate.evaluate`: same inputs, same
:class:`~repro.datalog.evaluate.EvaluationResult` outputs.  Two modes:

* ``materialised=True`` computes every IDB predicate bottom-up into a
  table (the RDFox strategy of Appendix D.4) and reports the exact
  per-predicate relation sizes;
* ``materialised=False`` installs views and lets SQLite's planner
  evaluate the goal lazily (the "views in standard DBMSs" suggestion of
  Section 6) — ``generated_tuples`` then counts only the goal relation,
  as nothing else is materialised.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..data.abox import ABox
from ..datalog.evaluate import EvaluationResult
from ..datalog.program import ADOM, NDLQuery
from .compile import SQLCompilation, compile_query
from .schema import (
    create_schema,
    load_abox,
    merged_arities,
    table_name,
)


class SQLEngine:
    """A loaded SQLite database ready to evaluate NDL queries.

    Reusable across queries over the same data: the EDB schema is
    loaded once and per-query views/tables are dropped after each
    evaluation.
    """

    def __init__(self, abox: ABox,
                 extra_relations: Optional[Mapping[str, Iterable[Tuple[str, ...]]]] = None,
                 edb_arities: Optional[Mapping[str, int]] = None):
        # check_same_thread=False lets a service session pool hand the
        # engine from one worker thread to another; access is still
        # serialised by the pool (SQLite objects are never used from
        # two threads at once).
        self.connection = sqlite3.connect(":memory:",
                                          check_same_thread=False)
        self._abox = abox
        self._extra = extra_relations
        self._loaded: Dict[str, int] = {}
        if edb_arities:
            self._ensure_loaded(dict(edb_arities))

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- loading ------------------------------------------------------------

    def _ensure_loaded(self, arities: Dict[str, int]) -> None:
        """Create and fill the EDB tables that are not present yet."""
        missing = {predicate: arity
                   for predicate, arity in arities.items()
                   if predicate not in self._loaded}
        for predicate, arity in missing.items():
            known = self._loaded.get(predicate)
            if known is not None and known != arity:
                raise ValueError(
                    f"predicate {predicate!r} already loaded with arity "
                    f"{known}, requested {arity}")
        if not missing:
            return
        create_schema(self.connection, missing)
        load_abox(self.connection, self._abox, missing, self._extra)
        self._loaded.update(missing)

    # -- incremental updates -------------------------------------------------

    def apply_delta(self, inserts: Mapping[str, Iterable[Tuple[str, ...]]],
                    deletes: Mapping[str, Iterable[Tuple[str, ...]]],
                    adom_add: Iterable[str] = (),
                    adom_remove: Iterable[str] = ()) -> None:
        """Apply an effective data delta to the already-loaded tables.

        Deletions run before insertions.  Predicates whose tables have
        not been created yet need no work: they are loaded lazily from
        the (already-updated) backing ABox on the next evaluation.  The
        backing :class:`~repro.data.abox.ABox` must therefore be the
        same object the caller mutated — :class:`AnswerSession` updates
        it in place before calling this.
        """
        # validate everything before touching the connection so a bad
        # row cannot leave a half-applied (uncommitted) delta behind
        plan = []
        for phase, batch in (("delete", deletes), ("insert", inserts)):
            for predicate, rows in batch.items():
                arity = self._loaded.get(predicate)
                if arity is None:
                    continue
                arity = max(arity, 1)
                rows = [tuple(row) for row in rows]
                for row in rows:
                    if len(row) != arity:
                        raise ValueError(
                            f"predicate {predicate!r} loaded with arity "
                            f"{arity}, got row of length {len(row)}")
                plan.append((phase, predicate, arity, rows))
        cursor = self.connection.cursor()
        try:
            for phase, predicate, arity, rows in plan:
                if phase == "delete":
                    condition = " AND ".join(
                        f"c{i} = ?" for i in range(arity))
                    cursor.executemany(
                        f"DELETE FROM {table_name(predicate)} "
                        f"WHERE {condition}", rows)
                else:
                    placeholders = ", ".join("?" * arity)
                    cursor.executemany(
                        f"INSERT INTO {table_name(predicate)} "
                        f"VALUES ({placeholders})", rows)
            if ADOM in self._loaded:
                cursor.executemany(
                    f"DELETE FROM {table_name(ADOM)} WHERE c0 = ?",
                    [(constant,) for constant in adom_remove])
                cursor.executemany(
                    f"INSERT INTO {table_name(ADOM)} VALUES (?)",
                    [(constant,) for constant in adom_add])
        except Exception:
            self.connection.rollback()
            raise
        self.connection.commit()

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, query: NDLQuery,
                 materialised: bool = True) -> EvaluationResult:
        """Evaluate one NDL query and drop its IDB objects afterwards."""
        arities = merged_arities(query, self._abox, self._extra)
        idb = query.program.idb_predicates
        self._ensure_loaded({predicate: arity
                             for predicate, arity in arities.items()
                             if predicate not in idb})
        compilation = compile_query(query, materialised=materialised)
        cursor = self.connection.cursor()
        sizes: Dict[str, int] = {}
        try:
            for predicate, statement in zip(compilation.idb_order,
                                            compilation.statements):
                cursor.execute(statement)
                if materialised:
                    count = cursor.execute(
                        f"SELECT COUNT(*) FROM {table_name(predicate)}"
                    ).fetchone()[0]
                    sizes[predicate] = count
            answers = self._goal_rows(cursor, compilation, query)
            if not materialised:
                sizes[query.goal] = len(answers)
        finally:
            self._drop(cursor, compilation)
        return EvaluationResult(frozenset(answers),
                                sum(sizes.values()), sizes)

    def _goal_rows(self, cursor, compilation: SQLCompilation,
                   query: NDLQuery) -> set:
        if query.goal not in compilation.idb_order:
            # goal is a plain EDB predicate: read its table directly
            arity = self._loaded.get(query.goal)
            if arity is None:
                return set()
            rows = cursor.execute(
                f"SELECT DISTINCT * FROM {table_name(query.goal)}"
            ).fetchall()
        else:
            rows = cursor.execute(compilation.goal_select).fetchall()
        if not query.answer_vars:
            return {()} if rows else set()
        return {tuple(row) for row in rows}

    def _drop(self, cursor, compilation: SQLCompilation) -> None:
        kind = "TABLE" if compilation.materialised else "VIEW"
        for predicate in reversed(compilation.idb_order):
            cursor.execute(
                f"DROP {kind} IF EXISTS {table_name(predicate)}")
        self.connection.commit()


def evaluate_sql(query: NDLQuery, abox: ABox,
                 extra_relations: Optional[Mapping[str, Iterable[Tuple[str, ...]]]] = None,
                 materialised: bool = True) -> EvaluationResult:
    """One-shot SQL evaluation of ``(Pi, G)`` over ``abox``.

    Semantically identical to :func:`repro.datalog.evaluate.evaluate`
    (the property tests check this); use :class:`SQLEngine` directly to
    amortise data loading across many queries.
    """
    with SQLEngine(abox, extra_relations) as engine:
        return engine.evaluate(query, materialised=materialised)
