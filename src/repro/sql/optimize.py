"""Semantic optimizer passes over the SQL IR.

Rewritten UCQs come out of the Section 3 rewriters riddled with
redundancy: duplicate clause-selects, unions where one branch's
answers are a subset of another's, per-branch ``DISTINCT`` work that
the enclosing ``UNION`` repeats, OR-chains a DBMS evaluates branch by
branch.  Each pass here removes one of those anti-patterns from a
:class:`~repro.sql.ir.QueryIR`, is answer-preserving on every database
instance (the differential suite in ``tests/test_sql_ir.py`` checks
optimized == unoptimized == python engine on random programs), and
logs its before/after IR node counts.

The pipeline, in application order:

``dedup-branches``
    drop exact duplicate selects inside each union (rewriters emit
    textually identical clauses after substitution collapses);
``prune-subsumed``
    drop a union branch when another branch of the same union maps
    homomorphically into it (theta-subsumption: every answer of the
    dropped branch is already produced by the subsuming one);
``or-to-in``
    merge branches that differ in exactly one ``=``-comparison on the
    same left operand into one branch with an ``IN`` list (literal
    rights) or an OR disjunction;
``hoist-common``
    name a join-select that occurs in two or more definitions as its
    own relation (a CTE in the ``WITH`` form, a view/table in the
    per-statement form) and scan it where it occurred;
``elide-distinct``
    remove ``DISTINCT`` where set semantics are already guaranteed:
    inside multi-branch unions (``UNION`` deduplicates anyway) and on
    selects whose projected columns form a key of the join (every
    column of every scanned relation is equal, via the WHERE
    equalities, to a projected column or a literal — and every scanned
    relation is itself duplicate-free, which the loader and the
    update path guarantee for base relations and the passes preserve
    for defined ones).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from .ir import (
    ColumnRef,
    Comparison,
    Definition,
    Disjunction,
    InList,
    OutputColumn,
    QueryIR,
    Select,
    SQLLiteral,
    TableRef,
    Union,
    node_count,
)

#: Per-pair step budget of the subsumption homomorphism search; a pair
#: that exhausts it is conservatively treated as not subsumed.
SUBSUMPTION_STEP_BUDGET = 20000

#: Unions wider than this skip the quadratic subsumption pass.
SUBSUMPTION_BRANCH_LIMIT = 96


# -- semantic views of a select -------------------------------------------

class _SelectFacts:
    """A select decoded for reasoning: equality classes of its column
    references, atoms over class ids, head classes and literal-pinned
    classes.  ``opaque`` selects (non-equality conditions the passes
    do not model) are left alone by the semantic passes."""

    def __init__(self, select: Select):
        self.select = select
        self.opaque = False
        parent: Dict[Tuple[Optional[str], str], object] = {}

        def find(key):
            parent.setdefault(key, key)
            while parent[key] != key:
                parent[key] = parent[parent[key]]
                key = parent[key]
            return key

        def union(a, b):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        # every column of every scanned relation is a node, even when
        # no condition or projection mentions it (unreferenced columns
        # matter for the key check)
        for table in select.tables:
            if table.arity is None:
                self.opaque = True
                return
            for index in range(table.arity):
                find((table.alias, f"c{index}"))

        pinned: List[Tuple[Tuple, str]] = []
        for condition in select.where:
            if (isinstance(condition, Comparison) and condition.op == "="
                    and isinstance(condition.left, ColumnRef)
                    and isinstance(condition.right, ColumnRef)):
                union((condition.left.table, condition.left.column),
                      (condition.right.table, condition.right.column))
            elif (isinstance(condition, Comparison) and condition.op == "="
                    and isinstance(condition.left, ColumnRef)
                    and isinstance(condition.right, SQLLiteral)):
                key = (condition.left.table, condition.left.column)
                find(key)
                pinned.append((key, condition.right.value))
            else:
                self.opaque = True
                return

        roots = sorted({find(key) for key in list(parent)})
        self.class_of = {key: roots.index(find(key)) for key in parent}
        self.atoms: List[Tuple[str, Tuple[int, ...]]] = []
        for table in select.tables:
            self.atoms.append((
                table.relation,
                tuple(self.class_of[(table.alias, f"c{index}")]
                      for index in range(table.arity))))
        self.head: List[Tuple[str, object]] = []
        for column in select.columns:
            if isinstance(column.expr, ColumnRef):
                key = (column.expr.table, column.expr.column)
                if key not in self.class_of:
                    self.opaque = True
                    return
                self.head.append(("class", self.class_of[key]))
            elif isinstance(column.expr, SQLLiteral):
                self.head.append(("lit", column.expr.value))
            else:
                self.opaque = True
                return
        self.pins: FrozenSet[Tuple[int, str]] = frozenset(
            (self.class_of[key], value) for key, value in pinned)
        self.covered = {cls for kind, cls in self.head if kind == "class"}
        self.covered |= {cls for cls, _ in self.pins}

    def key_covers_all_columns(self) -> bool:
        """Whether the projected (or literal-pinned) classes cover every
        column of every scanned relation — the 'projection is a key'
        condition for DISTINCT elision."""
        if self.opaque:
            return False
        return all(cls in self.covered for cls in self.class_of.values())


def _subsumes(b: _SelectFacts, a: _SelectFacts) -> bool:
    """Whether branch ``b`` subsumes branch ``a`` (``answers(a)`` is
    contained in ``answers(b)`` on every database): a homomorphism from
    ``b``'s atoms into ``a``'s atoms that matches the heads
    position-wise and carries ``b``'s literal pins into ``a``'s."""
    if b.opaque or a.opaque:
        return False
    if len(b.head) != len(a.head):
        return False
    if not {rel for rel, _ in b.atoms} <= {rel for rel, _ in a.atoms}:
        return False
    mapping: Dict[int, int] = {}
    for (b_kind, b_val), (a_kind, a_val) in zip(b.head, a.head):
        if b_kind != a_kind:
            return False
        if b_kind == "lit":
            if b_val != a_val:
                return False
        else:
            known = mapping.get(b_val)
            if known is None:
                mapping[b_val] = a_val
            elif known != a_val:
                return False

    budget = [SUBSUMPTION_STEP_BUDGET]

    def extend(index: int, mapping: Dict[int, int]) -> bool:
        if index == len(b.atoms):
            for cls, value in b.pins:
                if cls not in mapping or (mapping[cls], value) not in a.pins:
                    return False
            return True
        if budget[0] <= 0:
            return False
        relation, b_args = b.atoms[index]
        for a_relation, a_args in a.atoms:
            if a_relation != relation or len(a_args) != len(b_args):
                continue
            budget[0] -= 1
            candidate = dict(mapping)
            consistent = True
            for b_cls, a_cls in zip(b_args, a_args):
                known = candidate.get(b_cls)
                if known is None:
                    candidate[b_cls] = a_cls
                elif known != a_cls:
                    consistent = False
                    break
            if consistent and extend(index + 1, candidate):
                return True
        return False

    return extend(0, mapping)


# -- passes ----------------------------------------------------------------

def _map_unions(ir: QueryIR,
                transform: Callable[[Union], Union]) -> QueryIR:
    definitions = tuple(
        replace(definition, union=transform(definition.union))
        for definition in ir.definitions)
    return replace(ir, definitions=definitions)


def dedup_branches(ir: QueryIR) -> QueryIR:
    """Drop exact duplicate selects inside each union."""
    def transform(union: Union) -> Union:
        seen = []
        for select in union.selects:
            if select not in seen:
                seen.append(select)
        return Union(tuple(seen))
    return _map_unions(ir, transform)


def prune_subsumed(ir: QueryIR) -> QueryIR:
    """Drop union branches subsumed by another branch of the union."""
    def transform(union: Union) -> Union:
        if not 2 <= len(union.selects) <= SUBSUMPTION_BRANCH_LIMIT:
            return union
        facts = [_SelectFacts(select) for select in union.selects]
        alive = list(range(len(facts)))
        # smaller branches are cheaper and more likely to subsume;
        # scan them first so wide branches fall early
        order = sorted(alive, key=lambda i: len(facts[i].atoms))
        for winner in order:
            if winner not in alive:
                continue
            for loser in list(alive):
                if loser == winner:
                    continue
                if _subsumes(facts[winner], facts[loser]):
                    alive.remove(loser)
        alive.sort()
        return Union(tuple(union.selects[index] for index in alive))
    return _map_unions(ir, transform)


def merge_or_chains(ir: QueryIR) -> QueryIR:
    """Merge branches differing in one ``=``-comparison on a shared
    left operand: ``IN`` for literal rights, ``OR`` otherwise."""
    def transform(union: Union) -> Union:
        selects = list(union.selects)
        changed = True
        while changed:
            changed = False
            groups: Dict[Tuple, List[Tuple[int, Comparison]]] = {}
            for index, select in enumerate(selects):
                for position, condition in enumerate(select.where):
                    if (not isinstance(condition, Comparison)
                            or condition.op != "="):
                        continue
                    rest = (select.where[:position]
                            + select.where[position + 1:])
                    key = (select.columns, select.tables, select.distinct,
                           rest, condition.left)
                    groups.setdefault(key, []).append((index, condition))
            # apply at most one merge per round, then rebuild the
            # groups — a merged select's conditions are stale in every
            # other group it appeared in
            for (columns, tables, distinct, rest, _left), members \
                    in groups.items():
                live = []
                seen_indices = set()
                for index, condition in members:
                    if index not in seen_indices:
                        seen_indices.add(index)
                        live.append((index, condition))
                if len(live) < 2:
                    continue
                rights = []
                for _, condition in live:
                    if condition.right not in rights:
                        rights.append(condition.right)
                if len(rights) == 1:
                    merged = live[0][1]
                elif all(isinstance(right, SQLLiteral)
                         for right in rights):
                    merged = InList(live[0][1].left, tuple(rights))
                else:
                    merged = Disjunction(tuple(
                        Comparison(live[0][1].left, "=", right)
                        for right in rights))
                keep = live[0][0]
                dropped = {index for index, _ in live[1:]}
                selects[keep] = Select(columns, tables,
                                       rest + (merged,), distinct)
                selects = [select for index, select in enumerate(selects)
                           if index not in dropped]
                changed = True
                break
        return Union(tuple(selects))
    return _map_unions(ir, transform)


def hoist_common_subqueries(ir: QueryIR) -> QueryIR:
    """Give a join-select occurring in two or more definitions its own
    relation (rendered as a CTE in the ``WITH`` form) and scan it in
    place of every occurrence."""
    from .schema import TABLE_PREFIX

    counts: Dict[Select, int] = {}
    for definition in ir.definitions:
        for select in definition.union.selects:
            if len(select.tables) >= 2:
                counts[select] = counts.get(select, 0) + 1
    shared = [select for select, count in counts.items() if count >= 2]
    if not shared:
        return ir

    taken = ({definition.relation for definition in ir.definitions}
             | {table.relation for definition in ir.definitions
                for select in definition.union.selects
                for table in select.tables})
    serial = 0
    definitions = list(ir.definitions)
    for select in shared:
        while TABLE_PREFIX + f"_cse{serial}" in taken:
            serial += 1
        predicate = f"_cse{serial}"
        relation = TABLE_PREFIX + predicate
        taken.add(relation)
        serial += 1
        scan = Select(
            columns=tuple(OutputColumn(ColumnRef("t0", column.alias),
                                       column.alias)
                          for column in select.columns),
            tables=(TableRef(relation, "t0", arity=len(select.columns)),),
            where=(), distinct=False)
        hoisted = Definition(predicate=predicate, relation=relation,
                             union=Union((select,)), synthetic=True)
        first_use = None
        for index, definition in enumerate(definitions):
            if select in definition.union.selects:
                first_use = index
                break
        if first_use is None:
            continue
        definitions[first_use:first_use] = [hoisted]
        for index, definition in enumerate(definitions):
            if definition.synthetic:
                continue
            if select in definition.union.selects:
                definitions[index] = replace(
                    definition,
                    union=Union(tuple(scan if branch == select else branch
                                      for branch
                                      in definition.union.selects)))
    return replace(ir, definitions=tuple(definitions))


def elide_distinct(ir: QueryIR) -> QueryIR:
    """Remove DISTINCT where set semantics are already guaranteed.

    Inside a multi-branch union the enclosing ``UNION`` deduplicates,
    so per-branch DISTINCT only pays for a second sort.  A
    single-branch definition (and the goal select) drops DISTINCT when
    its projection is a key of the join (see
    :meth:`_SelectFacts.key_covers_all_columns`); every scanned
    relation is duplicate-free — the loader and delta path keep base
    relations sets, and every definition's output stays a set under
    this pass (multi-branch unions deduplicate, single selects keep
    DISTINCT unless the key condition holds).
    """
    def transform(union: Union) -> Union:
        if len(union.selects) >= 2:
            return Union(tuple(replace(select, distinct=False)
                               if select.distinct else select
                               for select in union.selects))
        select = union.selects[0]
        if select.distinct and _SelectFacts(select).key_covers_all_columns():
            return Union((replace(select, distinct=False),))
        return union

    ir = _map_unions(ir, transform)
    goal = ir.goal
    if goal.distinct and _SelectFacts(goal).key_covers_all_columns():
        ir = replace(ir, goal=replace(goal, distinct=False))
    return ir


#: The default pipeline, in application order.
PASSES: Tuple[Tuple[str, Callable[[QueryIR], QueryIR]], ...] = (
    ("dedup-branches", dedup_branches),
    ("prune-subsumed", prune_subsumed),
    ("or-to-in", merge_or_chains),
    ("hoist-common", hoist_common_subqueries),
    ("elide-distinct", elide_distinct),
)


def optimize_ir(ir: QueryIR, passes=PASSES
                ) -> Tuple[QueryIR, Tuple[Dict[str, object], ...]]:
    """Run the pass pipeline; returns the optimized IR plus the pass
    log — one ``{"pass", "before", "after", "changed"}`` entry per
    pass: node counts of the whole query IR, plus whether the pass
    rewrote anything at all (DISTINCT elision flips flags without
    changing the node count)."""
    log: List[Dict[str, object]] = []
    for name, pass_fn in passes:
        before = node_count(ir)
        rewritten = pass_fn(ir)
        log.append({"pass": name, "before": before,
                    "after": node_count(rewritten),
                    "changed": rewritten != ir})
        ir = rewritten
    return ir, tuple(log)
