"""Compiling NDL queries to SQL.

Every clause becomes a ``SELECT DISTINCT`` over a join of its body
atoms; every IDB predicate becomes the ``UNION`` of its clauses,
installed either as a SQL *view* (the Section 6 suggestion of running
rewritings "using views in standard DBMSs") or as a materialised table
(mirroring RDFox-style full materialisation, Appendix D.4).  The
compilation is purely syntactic and works for any nonrecursive program;
the database's own planner then chooses the join order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..datalog.evaluate import _equality_mapping
from ..datalog.program import Clause, NDLQuery, Program
from .schema import column_names, table_name

#: Value stored in the dummy column of nullary predicates.
NULLARY_MARK = "1"


def compile_clause(clause: Clause, idb: frozenset) -> str:
    """The ``SELECT`` statement computing one clause.

    ``idb`` is unused for the statement itself (both IDB and EDB atoms
    read from their predicate's table/view) but kept for symmetry with
    callers that split bodies.
    """
    # fold equalities into a variable renaming first (an equality may be
    # the only thing binding a head variable, cf. the Lin/Log clauses
    # with ``x = y`` conjuncts); after renaming every remaining variable
    # occurs in some body literal
    mapping = _equality_mapping(clause)
    head = clause.head.rename(mapping)
    body = [atom.rename(mapping) for atom in clause.body_literals]

    bindings: Dict[str, str] = {}
    from_parts: List[str] = []
    where: List[str] = []
    for index, atom in enumerate(body):
        alias = f"t{index}"
        from_parts.append(f"{table_name(atom.predicate)} AS {alias}")
        columns = column_names(max(len(atom.args), 1))
        for position, variable in enumerate(atom.args):
            reference = f"{alias}.{columns[position]}"
            if variable in bindings:
                where.append(f"{bindings[variable]} = {reference}")
            else:
                bindings[variable] = reference
    for variable in head.args:
        if variable not in bindings:
            raise ValueError(
                f"unbound head variable {variable!r} in clause {clause}")

    head_columns = column_names(max(len(head.args), 1))
    if head.args:
        select_list = ", ".join(
            f"{bindings[variable]} AS {head_columns[i]}"
            for i, variable in enumerate(head.args))
    else:
        select_list = f"'{NULLARY_MARK}' AS {head_columns[0]}"
    statement = f"SELECT DISTINCT {select_list}"
    if from_parts:
        statement += " FROM " + ", ".join(from_parts)
    if where:
        statement += " WHERE " + " AND ".join(where)
    return statement


def _definition(program: Program, predicate: str) -> str:
    idb = program.idb_predicates
    selects = [compile_clause(clause, idb)
               for clause in program.clauses_for(predicate)]
    return "\nUNION\n".join(selects)


@dataclass(frozen=True)
class SQLCompilation:
    """The SQL form of an NDL query.

    Attributes
    ----------
    statements:
        ``CREATE VIEW``/``CREATE TABLE ... AS`` statements, one per IDB
        predicate, in dependence order (safe to execute sequentially).
    goal_select:
        the final ``SELECT`` reading the goal relation.
    idb_order:
        the IDB predicates in the order their statements appear.
    materialised:
        whether the statements create tables (RDFox-style) or views.
    """

    statements: Tuple[str, ...]
    goal_select: str
    idb_order: Tuple[str, ...]
    materialised: bool

    def script(self) -> str:
        """The full SQL script (statements plus the goal query)."""
        parts = [statement + ";" for statement in self.statements]
        parts.append(self.goal_select + ";")
        return "\n\n".join(parts)

    def cte_query(self) -> str:
        """The whole query as a single ``WITH``-query (one CTE per IDB
        predicate) — the form one would register as a single view."""
        if not self.idb_order:
            return self.goal_select
        clauses = []
        for predicate, statement in zip(self.idb_order, self.statements):
            definition = statement.split(" AS\n", 1)[1]
            clauses.append(f"{_cte_name(predicate)} AS (\n{definition}\n)")
        return "WITH " + ",\n".join(clauses) + "\n" + self.goal_select


def _cte_name(predicate: str) -> str:
    return table_name(predicate)


def compile_query(query: NDLQuery, materialised: bool = False
                  ) -> SQLCompilation:
    """Compile ``(Pi, G)`` into per-predicate SQL statements.

    With ``materialised=False`` each IDB predicate becomes a view, so
    the DBMS evaluates lazily (and may push selections down); with
    ``materialised=True`` each becomes a table computed bottom-up,
    mirroring the materialise-everything strategy of Appendix D.4.
    """
    program = query.program.restrict_to(query.goal)
    order = program.topological_order()
    assert order is not None  # Program construction guarantees acyclicity
    statements = []
    for predicate in order:
        definition = _definition(program, predicate)
        kind = "TABLE" if materialised else "VIEW"
        statements.append(
            f"CREATE {kind} {table_name(predicate)} AS\n{definition}")
    goal_columns = column_names(max(len(query.answer_vars), 1))
    select_list = ", ".join(goal_columns[:max(len(query.answer_vars), 1)])
    goal_select = (f"SELECT DISTINCT {select_list} "
                   f"FROM {table_name(query.goal)}")
    return SQLCompilation(tuple(statements), goal_select, tuple(order),
                          materialised)
