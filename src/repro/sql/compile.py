"""Compiling NDL queries to SQL.

Every clause becomes a ``SELECT DISTINCT`` over a join of its body
atoms; every IDB predicate becomes the ``UNION`` of its clauses,
installed either as a SQL *view* (the Section 6 suggestion of running
rewritings "using views in standard DBMSs") or as a materialised table
(mirroring RDFox-style full materialisation, Appendix D.4).  The
compilation is purely syntactic and works for any nonrecursive program;
the database's own planner then chooses the join order.

The compiler first builds a structured :class:`~repro.sql.ir.QueryIR`
(:func:`compile_query_ir`), optionally runs the
:mod:`repro.sql.optimize` pass pipeline over it, and only then renders
text through a dialect — so every transformation operates on nodes,
never on SQL strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..datalog.evaluate import _equality_mapping
from ..datalog.program import Clause, NDLQuery
from .ir import (
    ColumnRef,
    Definition,
    Comparison,
    OutputColumn,
    QueryIR,
    Select,
    SQLLiteral,
    TableRef,
    Union,
    get_dialect,
)
from .optimize import optimize_ir
from .schema import TABLE_PREFIX, column_names

#: Value stored in the dummy column of nullary predicates.
NULLARY_MARK = "1"


def compile_clause_ir(clause: Clause) -> Select:
    """The :class:`~repro.sql.ir.Select` computing one clause."""
    # fold equalities into a variable renaming first (an equality may be
    # the only thing binding a head variable, cf. the Lin/Log clauses
    # with ``x = y`` conjuncts); after renaming every remaining variable
    # occurs in some body literal
    mapping = _equality_mapping(clause)
    head = clause.head.rename(mapping)
    body = [atom.rename(mapping) for atom in clause.body_literals]

    bindings: Dict[str, ColumnRef] = {}
    tables: List[TableRef] = []
    where: List[Comparison] = []
    for index, atom in enumerate(body):
        alias = f"t{index}"
        arity = max(len(atom.args), 1)
        tables.append(TableRef(TABLE_PREFIX + atom.predicate, alias,
                               arity=arity))
        columns = column_names(arity)
        for position, variable in enumerate(atom.args):
            reference = ColumnRef(alias, columns[position])
            if variable in bindings:
                where.append(Comparison(bindings[variable], "=", reference))
            else:
                bindings[variable] = reference
    for variable in head.args:
        if variable not in bindings:
            raise ValueError(
                f"unbound head variable {variable!r} in clause {clause}")

    head_columns = column_names(max(len(head.args), 1))
    if head.args:
        output = tuple(OutputColumn(bindings[variable], head_columns[i])
                       for i, variable in enumerate(head.args))
    else:
        output = (OutputColumn(SQLLiteral(NULLARY_MARK), head_columns[0]),)
    return Select(columns=output, tables=tuple(tables), where=tuple(where))


def compile_clause(clause: Clause, idb: frozenset) -> str:
    """The ``SELECT`` statement computing one clause.

    ``idb`` is unused for the statement itself (both IDB and EDB atoms
    read from their predicate's table/view) but kept for symmetry with
    callers that split bodies.
    """
    return get_dialect("sqlite").render_select(compile_clause_ir(clause))


def compile_query_ir(query: NDLQuery, materialised: bool = False) -> QueryIR:
    """Compile ``(Pi, G)`` into a structured :class:`QueryIR`."""
    program = query.program.restrict_to(query.goal)
    order = program.topological_order()
    assert order is not None  # Program construction guarantees acyclicity
    definitions = []
    for predicate in order:
        selects = tuple(compile_clause_ir(clause)
                        for clause in program.clauses_for(predicate))
        definitions.append(Definition(predicate=predicate,
                                      relation=TABLE_PREFIX + predicate,
                                      union=Union(selects)))
    goal_arity = max(len(query.answer_vars), 1)
    goal_columns = column_names(goal_arity)
    goal = Select(
        columns=tuple(OutputColumn(ColumnRef(None, name), name)
                      for name in goal_columns),
        tables=(TableRef(TABLE_PREFIX + query.goal, None,
                         arity=goal_arity),))
    return QueryIR(tuple(definitions), goal, materialised)


@dataclass(frozen=True)
class SQLCompilation:
    """The SQL form of an NDL query.

    Attributes
    ----------
    statements:
        ``CREATE VIEW``/``CREATE TABLE ... AS`` statements, one per
        defined relation, in dependence order (safe to execute
        sequentially).
    goal_select:
        the final ``SELECT`` reading the goal relation.
    idb_order:
        the defined predicates in the order their statements appear
        (including optimizer-introduced ``_cse*`` relations).
    materialised:
        whether the statements create tables (RDFox-style) or views.
    ir:
        the structured :class:`QueryIR` the text was rendered from.
    passes:
        the optimizer pass log (``{"pass", "before", "after"}`` per
        pass; empty when compiled with ``optimize=False``).
    dialect:
        the dialect name the text was rendered for.
    """

    statements: Tuple[str, ...]
    goal_select: str
    idb_order: Tuple[str, ...]
    materialised: bool
    ir: Optional[QueryIR] = None
    passes: Tuple[Dict[str, object], ...] = ()
    dialect: str = "sqlite"

    def script(self) -> str:
        """The full SQL script (statements plus the goal query)."""
        parts = [statement + ";" for statement in self.statements]
        parts.append(self.goal_select + ";")
        return "\n\n".join(parts)

    def cte_query(self) -> str:
        """The whole query as a single ``WITH``-query (one CTE per
        defined relation) — the form one would register as a single
        view.  Rendered from the IR, never re-parsed from statement
        text."""
        if self.ir is None:
            raise ValueError("cte_query() needs the compilation's IR; "
                             "build via compile_query()")
        return get_dialect(self.dialect).render_cte_query(self.ir)


def compile_query(query: NDLQuery, materialised: bool = False,
                  optimize: bool = False,
                  dialect: str = "sqlite") -> SQLCompilation:
    """Compile ``(Pi, G)`` into per-predicate SQL statements.

    With ``materialised=False`` each IDB predicate becomes a view, so
    the DBMS evaluates lazily (and may push selections down); with
    ``materialised=True`` each becomes a table computed bottom-up,
    mirroring the materialise-everything strategy of Appendix D.4.
    ``optimize=True`` runs the :mod:`repro.sql.optimize` pass pipeline
    over the IR before rendering; ``dialect`` picks the renderer.
    """
    ir = compile_query_ir(query, materialised)
    passes: Tuple[Dict[str, object], ...] = ()
    if optimize:
        ir, passes = optimize_ir(ir)
    renderer = get_dialect(dialect)
    return SQLCompilation(
        statements=renderer.render_statements(ir),
        goal_select=renderer.render_goal(ir),
        idb_order=tuple(definition.predicate
                        for definition in ir.definitions),
        materialised=materialised,
        ir=ir,
        passes=passes,
        dialect=dialect)
