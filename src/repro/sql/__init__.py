"""Relational (SQL) backend for NDL rewritings.

Section 6 of the paper asks "whether our rewritings can be efficiently
implemented using views in standard DBMSs".  This subpackage answers
affirmatively for SQLite (the standard-library DBMS) and DuckDB (the
optional columnar engine): an ABox is loaded into a relational schema
(:mod:`repro.sql.schema`), an NDL query is compiled into a structured
relational IR (:mod:`repro.sql.ir`: selects, unions, definitions, with
identifier quoting and literal escaping in exactly one place), the
optional optimizer pass pipeline rewrites redundancy out of it
(:mod:`repro.sql.optimize`: branch dedup, subsumption pruning,
OR→IN merging, common-subquery hoisting, DISTINCT elision — each pass
logged with before/after node counts), a per-dialect renderer turns it
into text — one view or materialised table per IDB predicate —
(:mod:`repro.sql.compile`), and :func:`repro.sql.engine.evaluate_sql`
runs the whole pipeline, returning the same
:class:`~repro.datalog.evaluate.EvaluationResult` as the native Python
engine so the backends are interchangeable and can be compared
(``benchmarks/bench_ablation_engines.py``,
``benchmarks/bench_sql_opt.py``).
"""

from .compile import (
    SQLCompilation,
    compile_clause,
    compile_clause_ir,
    compile_query,
    compile_query_ir,
)
from .engine import DuckDBEngine, SQLEngine, evaluate_sql
from .ir import DIALECT_NAMES, QueryIR, get_dialect
from .optimize import PASSES, optimize_ir
from .schema import create_schema, load_abox, quote_identifier, table_name

__all__ = [
    "DIALECT_NAMES",
    "DuckDBEngine",
    "PASSES",
    "QueryIR",
    "SQLCompilation",
    "SQLEngine",
    "compile_clause",
    "compile_clause_ir",
    "compile_query",
    "compile_query_ir",
    "create_schema",
    "evaluate_sql",
    "get_dialect",
    "load_abox",
    "optimize_ir",
    "quote_identifier",
    "table_name",
]
