"""Relational (SQL) backend for NDL rewritings.

Section 6 of the paper asks "whether our rewritings can be efficiently
implemented using views in standard DBMSs".  This subpackage answers
affirmatively for SQLite (the standard-library DBMS): an ABox is loaded
into a relational schema (:mod:`repro.sql.schema`), an NDL query is
compiled into SQL — one view or materialised table per IDB predicate —
(:mod:`repro.sql.compile`), and :func:`repro.sql.engine.evaluate_sql`
runs the whole pipeline, returning the same
:class:`~repro.datalog.evaluate.EvaluationResult` as the native Python
engine so the two backends are interchangeable and can be compared
(``benchmarks/bench_ablation_engines.py``).
"""

from .compile import SQLCompilation, compile_clause, compile_query
from .engine import SQLEngine, evaluate_sql
from .schema import create_schema, load_abox, quote_identifier, table_name

__all__ = [
    "SQLCompilation",
    "SQLEngine",
    "compile_clause",
    "compile_query",
    "create_schema",
    "evaluate_sql",
    "load_abox",
    "quote_identifier",
    "table_name",
]
