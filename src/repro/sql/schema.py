"""Relational schema for ABoxes and source databases.

Every predicate becomes one table with positional columns ``c0``,
``c1``, ... (one per argument).  Predicate names may contain characters
that are not valid SQL identifiers (surrogates like ``A_P-``, internal
predicates like ``_sk0`` or ``__adom__``), so table names are derived
by escaping and always double-quoted.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from ..data.abox import ABox
from ..datalog.program import ADOM, Literal, NDLQuery

#: Prefix of every predicate table (avoids clashes with SQLite keywords).
TABLE_PREFIX = "p_"


def quote_identifier(name: str) -> str:
    """Quote an arbitrary string as a SQL identifier."""
    return '"' + name.replace('"', '""') + '"'


def table_name(predicate: str) -> str:
    """The (quoted) table name used for a predicate."""
    return quote_identifier(TABLE_PREFIX + predicate)


def column_names(arity: int) -> Tuple[str, ...]:
    """Positional column names ``c0 .. c{arity-1}``."""
    return tuple(f"c{i}" for i in range(arity))


def predicate_arities(query: NDLQuery) -> Dict[str, int]:
    """The arity of every predicate mentioned by the program.

    Raises ``ValueError`` if a predicate is used with two different
    arities — SQL tables have a fixed width, and so do the paper's
    relational instances.
    """
    arities: Dict[str, int] = {}

    def record(literal: Literal) -> None:
        known = arities.get(literal.predicate)
        if known is None:
            arities[literal.predicate] = len(literal.args)
        elif known != len(literal.args):
            raise ValueError(
                f"predicate {literal.predicate!r} used with arities "
                f"{known} and {len(literal.args)}")

    for clause in query.program.clauses:
        record(clause.head)
        for atom in clause.body_literals:
            record(atom)
    arities.setdefault(ADOM, 1)
    return arities


def create_schema(connection: sqlite3.Connection,
                  arities: Mapping[str, int]) -> None:
    """Create one (empty) table per predicate."""
    cursor = connection.cursor()
    for predicate in sorted(arities):
        arity = arities[predicate]
        columns = ", ".join(f"{c} TEXT NOT NULL"
                            for c in column_names(max(arity, 1)))
        cursor.execute(
            f"CREATE TABLE {table_name(predicate)} ({columns})")
    connection.commit()


def load_abox(connection: sqlite3.Connection, abox: ABox,
              arities: Mapping[str, int],
              extra_relations: Optional[Mapping[str, Iterable[Tuple[str, ...]]]] = None
              ) -> None:
    """Populate the schema from a data instance.

    ``arities`` must already contain every predicate to be loaded (use
    :func:`predicate_arities` merged with the ABox signature); tables
    are assumed to exist (see :func:`create_schema`).  ``__adom__`` is
    filled with the active domain — the individuals of the ABox plus
    every constant of ``extra_relations``.
    """
    cursor = connection.cursor()
    adom: Set[str] = set(abox.individuals)

    def insert(predicate: str, rows: Iterable[Tuple[str, ...]]) -> None:
        if predicate not in arities:
            return
        arity = max(arities[predicate], 1)
        placeholders = ", ".join("?" * arity)
        cursor.executemany(
            f"INSERT INTO {table_name(predicate)} VALUES ({placeholders})",
            rows)

    for predicate in sorted(abox.unary_predicates):
        insert(predicate, ((c,) for c in abox.unary(predicate)))
    for predicate in sorted(abox.binary_predicates):
        insert(predicate, abox.binary(predicate))
    if extra_relations:
        for predicate in sorted(extra_relations):
            # dedupe: relations are sets (the ABox sides already are),
            # and the optimizer's DISTINCT elision relies on base
            # tables being duplicate-free
            rows = list(dict.fromkeys(
                tuple(row) for row in extra_relations[predicate]))
            insert(predicate, rows)
            for row in rows:
                adom.update(row)
    insert(ADOM, ((c,) for c in sorted(adom)))
    connection.commit()


def abox_arities(abox: ABox) -> Dict[str, int]:
    """The arity of every predicate occurring in the data."""
    arities = {predicate: 1 for predicate in abox.unary_predicates}
    arities.update({predicate: 2 for predicate in abox.binary_predicates})
    return arities


def merged_arities(query: NDLQuery, abox: ABox,
                   extra_relations: Optional[Mapping[str, Iterable[Tuple[str, ...]]]] = None
                   ) -> Dict[str, int]:
    """Program arities merged with the data signature.

    Data predicates unknown to the program are still loaded so that two
    queries over the same connection see the same facts; a predicate
    used by both must agree on its arity.
    """
    arities = predicate_arities(query)
    for predicate, arity in abox_arities(abox).items():
        known = arities.get(predicate)
        if known is not None and known != arity:
            raise ValueError(
                f"predicate {predicate!r} has arity {known} in the "
                f"program but {arity} in the data")
        arities[predicate] = arity
    if extra_relations:
        for predicate, rows in extra_relations.items():
            for row in rows:
                known = arities.get(predicate)
                if known is not None and known != len(row):
                    raise ValueError(
                        f"predicate {predicate!r} has arity {known} in "
                        f"the program but {len(row)} in extra_relations")
                arities[predicate] = len(row)
                break
    return arities
