"""Positive existential (PE) queries (Section 2, Appendix C.3).

A PE-formula is built from unary/binary atoms with conjunction,
disjunction and existential quantification.  The paper measures the
*size* of PE-rewritings (Figure 1b) and proves that PE-query evaluation
is NP-hard already over the tree-shaped data instances ``A_m^alpha``
(Theorem 21); this module provides the formula representation and a
backtracking evaluator used by that reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Tuple

from ..data.abox import ABox, Constant

Variable = str


@dataclass(frozen=True)
class PEAtom:
    """An atom ``P(args)`` inside a PE-formula."""

    predicate: str
    args: Tuple[Variable, ...]

    @property
    def variables(self) -> FrozenSet[Variable]:
        return frozenset(self.args)

    def size(self) -> int:
        return 1 + len(self.args)

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(self.args)})"


@dataclass(frozen=True)
class PEEq:
    """An equality ``left = right`` (Section 2 allows equality in
    FO/PE-rewritings)."""

    left: Variable
    right: Variable

    @property
    def variables(self) -> FrozenSet[Variable]:
        return frozenset((self.left, self.right))

    def size(self) -> int:
        return 3

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class And:
    """Conjunction of PE-formulas."""

    children: Tuple[object, ...]

    @property
    def variables(self) -> FrozenSet[Variable]:
        result: FrozenSet[Variable] = frozenset()
        for child in self.children:
            result |= child.variables
        return result

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def __str__(self) -> str:
        return "(" + " & ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Or:
    """Disjunction of PE-formulas."""

    children: Tuple[object, ...]

    @property
    def variables(self) -> FrozenSet[Variable]:
        result: FrozenSet[Variable] = frozenset()
        for child in self.children:
            result |= child.variables
        return result

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def __str__(self) -> str:
        return "(" + " | ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class PEQuery:
    """A PE-query ``exists z phi(x, z)`` with answer variables ``x``."""

    matrix: object
    answer_vars: Tuple[Variable, ...] = ()

    def size(self) -> int:
        """``|q'|``: the number of symbols (Figure 1b's size measure)."""
        return self.matrix.size() + len(self.answer_vars)

    def __str__(self) -> str:
        return (f"q({', '.join(self.answer_vars)}) := exists ... "
                f"{self.matrix}")


def conj(*children) -> And:
    return And(tuple(children))


def disj(*children) -> Or:
    return Or(tuple(children))


def holds(formula, abox: ABox,
          assignment: Dict[Variable, Constant]) -> bool:
    """Does ``formula`` hold in ``abox`` under a *total* assignment?"""
    if isinstance(formula, PEAtom):
        constants = tuple(assignment[arg] for arg in formula.args)
        return (formula.predicate, constants) in abox
    if isinstance(formula, PEEq):
        return assignment[formula.left] == assignment[formula.right]
    if isinstance(formula, And):
        return all(holds(child, abox, assignment)
                   for child in formula.children)
    if isinstance(formula, Or):
        return any(holds(child, abox, assignment)
                   for child in formula.children)
    raise TypeError(f"not a PE formula: {formula!r}")


def _free_atoms(formula) -> Iterator[PEAtom]:
    if isinstance(formula, PEAtom):
        yield formula
    elif isinstance(formula, (And, Or)):
        for child in formula.children:
            yield from _free_atoms(child)


def evaluate_pe(query: PEQuery, abox: ABox,
                candidate: Tuple[Constant, ...]) -> bool:
    """``I_A |= q'(candidate)``: backtracking search for values of the
    existential variables (PE-evaluation is NP-hard in general —
    Theorem 21 — so worst-case exponential behaviour is expected)."""
    if len(candidate) != len(query.answer_vars):
        raise ValueError("candidate arity mismatch")
    assignment: Dict[Variable, Constant] = dict(
        zip(query.answer_vars, candidate))
    variables = sorted(query.matrix.variables - set(query.answer_vars))
    domain = sorted(abox.individuals)

    # guided ordering: prefer variables constrained by binary atoms
    # whose other end is already assigned
    def search(remaining) -> bool:
        if not remaining:
            return holds(query.matrix, abox, assignment)
        var = _pick(remaining, assignment)
        rest = [v for v in remaining if v != var]
        for value in _candidates(var, abox, assignment, domain):
            assignment[var] = value
            if not _obviously_false(query.matrix, abox, assignment):
                if search(rest):
                    del assignment[var]
                    return True
            del assignment[var]
        return False

    def _pick(remaining, assignment):
        for atom in _free_atoms(query.matrix):
            if len(atom.args) == 2:
                first, second = atom.args
                if first in assignment and second in remaining:
                    return second
                if second in assignment and first in remaining:
                    return first
        return remaining[0]

    def _candidates(var, abox, assignment, domain):
        for atom in _mandatory_atoms(query.matrix):
            if len(atom.args) == 2 and var in atom.args:
                first, second = atom.args
                if first in assignment and second == var:
                    return sorted({b for a, b in abox.binary(atom.predicate)
                                   if a == assignment[first]})
                if second in assignment and first == var:
                    return sorted({a for a, b in abox.binary(atom.predicate)
                                   if b == assignment[second]})
        return domain

    return search(variables)


def _mandatory_atoms(formula) -> Iterator[PEAtom]:
    """Atoms that must hold in every disjunct (conjunctive spine)."""
    if isinstance(formula, PEAtom):
        yield formula
    elif isinstance(formula, And):
        for child in formula.children:
            yield from _mandatory_atoms(child)


def pe_to_ndl(query: PEQuery, goal_name: str = "PEG"):
    """Compile a PE-query into an equivalent NDL query.

    Conjunctions are flattened into clause bodies; every disjunction
    becomes an IDB predicate over its *interface* (the variables shared
    with the rest of the formula), with one clause per disjunct.  The
    compilation is linear in the formula size; evaluation cost then
    depends on the interface widths — consistent with Theorem 21, which
    shows PE-evaluation is NP-hard in general.
    """
    import itertools as _it

    from ..datalog.program import Clause, Literal, NDLQuery, Program

    counter = _it.count()
    clauses = []

    def compile_node(node, outside: FrozenSet[Variable]):
        if isinstance(node, PEAtom):
            return [Literal(node.predicate, node.args)]
        if isinstance(node, PEEq):
            from ..datalog.program import Equality

            return [Equality(node.left, node.right)]
        if isinstance(node, And):
            body = []
            for index, child in enumerate(node.children):
                sibling_vars: FrozenSet[Variable] = frozenset()
                for j, other in enumerate(node.children):
                    if j != index:
                        sibling_vars |= other.variables
                body.extend(compile_node(child, outside | sibling_vars))
            return body
        if isinstance(node, Or):
            args = tuple(sorted(node.variables & outside))
            head = Literal(f"_pe{next(counter)}", args)
            for child in node.children:
                clauses.append(Clause(head, tuple(
                    compile_node(child, frozenset(args)))))
            return [head]
        raise TypeError(f"not a PE formula: {node!r}")

    goal_body = compile_node(query.matrix, frozenset(query.answer_vars))
    clauses.append(Clause(Literal(goal_name, tuple(query.answer_vars)),
                          tuple(goal_body)))
    return NDLQuery(Program(clauses), goal_name, tuple(query.answer_vars))


def _obviously_false(formula, abox, assignment) -> bool:
    """Partial-assignment pruning on the conjunctive spine."""
    for atom in _mandatory_atoms(formula):
        if all(arg in assignment for arg in atom.args):
            constants = tuple(assignment[arg] for arg in atom.args)
            if (atom.predicate, constants) not in abox:
                return True
    return False
