"""First-order formulas with equality — the most general rewriting
target of the paper (Section 2 and Figure 1b).

The paper measures three rewriting targets: PE (positive existential),
NDL and full FO.  PE and NDL have dedicated modules; this one supplies
full FO with negation, both quantifiers and equality, which is needed
for Theorem 19's polynomial FO-rewriting of the SAT OMQs ``Q_phi``
(``repro.hardness.fo_rewriting``) and for expressing rewritings, like
that one, that are *not* monotone.

Evaluation is over the FO-structure ``I_A`` of a data instance (domain
``ind(A)``, relations as in the data) — the right-hand side of the
rewriting equation (2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Tuple, Union

from ..data.abox import ABox, Constant

Variable = str


@dataclass(frozen=True)
class FOAtom:
    """A relational atom ``P(args)``."""

    predicate: str
    args: Tuple[Variable, ...]

    @property
    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset(self.args)

    def size(self) -> int:
        return 1 + len(self.args)

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(self.args)})"


@dataclass(frozen=True)
class FOEq:
    """``left = right``."""

    left: Variable
    right: Variable

    @property
    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset((self.left, self.right))

    def size(self) -> int:
        return 3

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class FONot:
    """Negation."""

    child: "FOFormula"

    @property
    def free_variables(self) -> FrozenSet[Variable]:
        return self.child.free_variables

    def size(self) -> int:
        return 1 + self.child.size()

    def __str__(self) -> str:
        return f"~{self.child}"


@dataclass(frozen=True)
class FOAnd:
    """Conjunction (n-ary)."""

    children: Tuple["FOFormula", ...]

    @property
    def free_variables(self) -> FrozenSet[Variable]:
        result: FrozenSet[Variable] = frozenset()
        for child in self.children:
            result |= child.free_variables
        return result

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def __str__(self) -> str:
        return "(" + " & ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class FOOr:
    """Disjunction (n-ary)."""

    children: Tuple["FOFormula", ...]

    @property
    def free_variables(self) -> FrozenSet[Variable]:
        result: FrozenSet[Variable] = frozenset()
        for child in self.children:
            result |= child.free_variables
        return result

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def __str__(self) -> str:
        return "(" + " | ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class FOExists:
    """``exists variables child``."""

    variables: Tuple[Variable, ...]
    child: "FOFormula"

    @property
    def free_variables(self) -> FrozenSet[Variable]:
        return self.child.free_variables - set(self.variables)

    def size(self) -> int:
        return 1 + len(self.variables) + self.child.size()

    def __str__(self) -> str:
        return f"E {' '.join(self.variables)} . {self.child}"


@dataclass(frozen=True)
class FOForall:
    """``forall variables child``."""

    variables: Tuple[Variable, ...]
    child: "FOFormula"

    @property
    def free_variables(self) -> FrozenSet[Variable]:
        return self.child.free_variables - set(self.variables)

    def size(self) -> int:
        return 1 + len(self.variables) + self.child.size()

    def __str__(self) -> str:
        return f"A {' '.join(self.variables)} . {self.child}"


@dataclass(frozen=True)
class FOTrue:
    """The constant ``true`` (``phi*`` of Theorem 19 when satisfiable)."""

    @property
    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FOFalse:
    """The constant ``false``."""

    @property
    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "false"


FOFormula = Union[FOAtom, FOEq, FONot, FOAnd, FOOr,
                  FOExists, FOForall, FOTrue, FOFalse]


def fo_and(*children: FOFormula) -> FOFormula:
    """N-ary conjunction with the obvious simplifications."""
    flat = [c for c in children if not isinstance(c, FOTrue)]
    if any(isinstance(c, FOFalse) for c in flat):
        return FOFalse()
    if not flat:
        return FOTrue()
    if len(flat) == 1:
        return flat[0]
    return FOAnd(tuple(flat))


def fo_or(*children: FOFormula) -> FOFormula:
    """N-ary disjunction with the obvious simplifications."""
    flat = [c for c in children if not isinstance(c, FOFalse)]
    if any(isinstance(c, FOTrue) for c in flat):
        return FOTrue()
    if not flat:
        return FOFalse()
    if len(flat) == 1:
        return flat[0]
    return FOOr(tuple(flat))


def holds_fo(formula: FOFormula, abox: ABox,
             assignment: Dict[Variable, Constant]) -> bool:
    """Does ``I_A |= formula`` under an assignment of its free
    variables?  Quantifiers range over ``ind(A)`` (active-domain
    semantics, the standard reading of (2))."""
    if isinstance(formula, FOAtom):
        constants = tuple(assignment[arg] for arg in formula.args)
        return (formula.predicate, constants) in abox
    if isinstance(formula, FOEq):
        return assignment[formula.left] == assignment[formula.right]
    if isinstance(formula, FONot):
        return not holds_fo(formula.child, abox, assignment)
    if isinstance(formula, FOAnd):
        return all(holds_fo(child, abox, assignment)
                   for child in formula.children)
    if isinstance(formula, FOOr):
        return any(holds_fo(child, abox, assignment)
                   for child in formula.children)
    if isinstance(formula, FOTrue):
        return True
    if isinstance(formula, FOFalse):
        return False
    if isinstance(formula, (FOExists, FOForall)):
        domain = sorted(abox.individuals)
        witness = isinstance(formula, FOExists)

        def extend(index: int, current: Dict[Variable, Constant]) -> bool:
            if index == len(formula.variables):
                return holds_fo(formula.child, abox, current)
            variable = formula.variables[index]
            results = (extend(index + 1, {**current, variable: value})
                       for value in domain)
            return any(results) if witness else all(results)

        return extend(0, dict(assignment))
    raise TypeError(f"not an FO formula: {formula!r}")


def evaluate_fo(formula: FOFormula, abox: ABox,
                answer_vars: Iterable[Variable] = (),
                candidate: Tuple[Constant, ...] = ()) -> bool:
    """``I_A |= formula(candidate)`` for the given answer variables."""
    answer_vars = tuple(answer_vars)
    if len(candidate) != len(answer_vars):
        raise ValueError("candidate arity mismatch")
    missing = formula.free_variables - set(answer_vars)
    if missing:
        raise ValueError(
            f"free variables {sorted(missing)} are not answer variables")
    return holds_fo(formula, abox, dict(zip(answer_vars, candidate)))


def cq_to_fo(cq) -> FOFormula:
    """A CQ as an FO sentence/formula (its existential closure over the
    non-answer variables)."""
    atoms = [FOAtom(atom.predicate, atom.args) for atom in cq.atoms]
    matrix = fo_and(*atoms)
    bound = tuple(sorted(cq.existential_vars))
    if bound:
        return FOExists(bound, matrix)
    return matrix
