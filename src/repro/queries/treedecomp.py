"""Tree decompositions of conjunctive queries (Section 3.2).

For tree-shaped CQs we build the natural width-1 decomposition whose
bags are the edges of the Gaifman graph (Example 8); for arbitrary CQs
we fall back on the min-fill-in heuristic from networkx, which is exact
on trees and a good upper bound in general.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

import networkx as nx
from networkx.algorithms.approximation import treewidth_min_fill_in

from .cq import CQ, Variable


class TreeDecomposition:
    """A pair ``(T, lambda)``: a tree with a bag of variables per node."""

    def __init__(self, tree: nx.Graph, bags: Dict[int, FrozenSet[Variable]]):
        self.tree = tree
        self.bags = dict(bags)
        if set(tree.nodes) != set(self.bags):
            raise ValueError("every tree node needs a bag")

    @property
    def width(self) -> int:
        """``max |bag| - 1``."""
        return max((len(bag) for bag in self.bags.values()), default=0) - 1

    @property
    def nodes(self) -> List[int]:
        return sorted(self.tree.nodes)

    def bag(self, node: int) -> FrozenSet[Variable]:
        return self.bags[node]

    def neighbours(self, node: int) -> List[int]:
        return sorted(self.tree.neighbors(node))

    def validate(self, query: CQ) -> None:
        """Check the three tree-decomposition conditions for ``query``.

        Raises ``ValueError`` on violation; used in tests and as a safety
        net in the Log rewriter.
        """
        if self.tree.number_of_nodes() and not nx.is_tree(self.tree):
            raise ValueError("decomposition graph is not a tree")
        covered = set()
        for bag in self.bags.values():
            covered |= bag
        if not query.variables <= covered:
            raise ValueError("some variable occurs in no bag")
        for atom in query.binary_atoms():
            pair = set(atom.args)
            if not any(pair <= bag for bag in self.bags.values()):
                raise ValueError(f"edge of atom {atom} is in no bag")
        for variable in query.variables:
            nodes = [node for node, bag in self.bags.items()
                     if variable in bag]
            subtree = self.tree.subgraph(nodes)
            if nodes and not nx.is_connected(subtree):
                raise ValueError(
                    f"bags containing {variable} are not connected")

    def __repr__(self) -> str:
        return (f"TreeDecomposition({self.tree.number_of_nodes()} nodes, "
                f"width={self.width})")


def tree_decomposition(query: CQ) -> TreeDecomposition:
    """A tree decomposition of the Gaifman graph of ``query``.

    Width 1 (the natural edge decomposition) for tree-shaped queries;
    min-fill-in heuristic otherwise.
    """
    graph = query.gaifman()
    if graph.number_of_nodes() == 0:
        tree = nx.Graph()
        tree.add_node(0)
        return TreeDecomposition(tree, {0: frozenset()})
    if nx.is_tree(graph):
        return _edge_decomposition(graph)
    width, junction = treewidth_min_fill_in(graph)
    tree = nx.Graph()
    bags: Dict[int, FrozenSet[Variable]] = {}
    index = {bag: i for i, bag in enumerate(junction.nodes)}
    for bag, i in index.items():
        tree.add_node(i)
        bags[i] = frozenset(bag)
    for first, second in junction.edges:
        tree.add_edge(index[first], index[second])
    # a disconnected Gaifman graph yields a junction *forest*; chaining the
    # components preserves all three decomposition conditions
    components = [sorted(component)
                  for component in nx.connected_components(tree)]
    for previous, current in zip(components, components[1:]):
        tree.add_edge(previous[0], current[0])
    decomposition = TreeDecomposition(tree, bags)
    decomposition.validate(query)
    return decomposition


def _edge_decomposition(graph: nx.Graph) -> TreeDecomposition:
    """One bag per edge of a tree graph, chained along the tree, matching
    the chain of bags in Example 8 for linear queries."""
    tree = nx.Graph()
    bags: Dict[int, FrozenSet[Variable]] = {}
    if graph.number_of_edges() == 0:
        for i, node in enumerate(sorted(graph.nodes)):
            tree.add_node(i)
            bags[i] = frozenset({node})
            if i:
                tree.add_edge(i - 1, i)
        return TreeDecomposition(tree, bags)
    root = min(graph.nodes)
    anchor_bag: Dict[Variable, int] = {}
    counter = 0
    for parent, child in nx.bfs_edges(graph, root):
        node_id = counter
        counter += 1
        tree.add_node(node_id)
        bags[node_id] = frozenset({parent, child})
        if parent in anchor_bag:
            tree.add_edge(anchor_bag[parent], node_id)
        else:
            # the first bag containing the BFS root anchors it
            anchor_bag[parent] = node_id
        anchor_bag[child] = node_id
    # vertices of degree 0 inside a connected tree cannot occur, but a
    # disconnected Gaifman graph (forest) is chained component by component
    isolated = [node for node in graph.nodes if graph.degree(node) == 0]
    previous = 0 if counter else None
    for node in sorted(isolated):
        node_id = counter
        counter += 1
        tree.add_node(node_id)
        bags[node_id] = frozenset({node})
        if previous is not None:
            tree.add_edge(previous, node_id)
        previous = node_id
    return TreeDecomposition(tree, bags)


def subtree_components(tree: nx.Graph, nodes: FrozenSet[int],
                       split: int) -> List[FrozenSet[int]]:
    """The components of the subtree induced by ``nodes`` after removing
    ``split`` (the subtrees ``D_1, ..., D_k`` of Section 3.2)."""
    subgraph = tree.subgraph(nodes - {split})
    return [frozenset(component)
            for component in nx.connected_components(subgraph)]
