"""Conjunctive queries, their Gaifman graphs and shape classification.

A CQ ``q(x) = exists y phi(x, y)`` is a set of unary and binary atoms
over variables (the paper assumes, w.l.o.g., no constants in queries).
The *Gaifman graph* has the variables as vertices and an edge ``{u, v}``
for every binary atom ``P(u, v)``; a CQ is *tree-shaped* when this graph
is a tree and *linear* when it is a tree with at most two leaves.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..ontology.terms import Role

Variable = str


@dataclass(frozen=True, order=True)
class Atom:
    """A query atom ``A(z)`` or ``P(z, z')``."""

    predicate: str
    args: Tuple[Variable, ...]

    def __post_init__(self):
        if len(self.args) not in (1, 2):
            raise ValueError(
                f"atoms must be unary or binary, got {self.predicate}/"
                f"{len(self.args)}")

    @property
    def is_unary(self) -> bool:
        return len(self.args) == 1

    @property
    def is_binary(self) -> bool:
        return len(self.args) == 2

    @property
    def variables(self) -> FrozenSet[Variable]:
        return frozenset(self.args)

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(self.args)})"


def unary(predicate: str, var: Variable) -> Atom:
    """Shorthand for a unary atom."""
    return Atom(predicate, (var,))


def binary(predicate: str, first: Variable, second: Variable) -> Atom:
    """Shorthand for a binary atom."""
    return Atom(predicate, (first, second))


def role_atom(role: Role, first: Variable, second: Variable) -> Atom:
    """The atom asserting ``role(first, second)``; inverse roles swap the
    arguments so that only direct predicates appear in queries."""
    if role.inverted:
        return Atom(role.name, (second, first))
    return Atom(role.name, (first, second))


class CQ:
    """A conjunctive query with a fixed tuple of answer variables.

    Regarded, as in the paper, as the set of its atoms; two CQs are equal
    when they have the same atoms and the same answer-variable tuple.
    """

    def __init__(self, atoms: Iterable[Atom],
                 answer_vars: Sequence[Variable] = ()):
        self.atoms: Tuple[Atom, ...] = tuple(dict.fromkeys(atoms))
        self.answer_vars: Tuple[Variable, ...] = tuple(answer_vars)
        all_vars = set()
        for atom in self.atoms:
            all_vars.update(atom.args)
        missing = set(self.answer_vars) - all_vars
        if missing:
            raise ValueError(
                f"answer variables {sorted(missing)} do not occur in the "
                "query body")
        self._variables = frozenset(all_vars)

    # -- vocabulary -----------------------------------------------------

    @property
    def variables(self) -> FrozenSet[Variable]:
        """``var(q)``: all variables of the query."""
        return self._variables

    @property
    def existential_vars(self) -> FrozenSet[Variable]:
        return self._variables - set(self.answer_vars)

    @property
    def is_boolean(self) -> bool:
        return not self.answer_vars

    def unary_atoms(self, var: Optional[Variable] = None) -> List[Atom]:
        atoms = [atom for atom in self.atoms if atom.is_unary]
        if var is not None:
            atoms = [atom for atom in atoms if atom.args[0] == var]
        return atoms

    def binary_atoms(self) -> List[Atom]:
        return [atom for atom in self.atoms if atom.is_binary]

    def atoms_between(self, first: Variable, second: Variable) -> List[Atom]:
        """Binary atoms over exactly the (unordered) pair of variables."""
        pair = {first, second}
        return [atom for atom in self.binary_atoms()
                if set(atom.args) == pair]

    def loop_atoms(self, var: Variable) -> List[Atom]:
        """Binary atoms ``P(z, z)`` at ``var``."""
        return [atom for atom in self.binary_atoms()
                if atom.args == (var, var)]

    # -- Gaifman graph and shape ------------------------------------------

    def gaifman(self) -> nx.Graph:
        """The Gaifman graph of the query (self-loops are ignored, as the
        paper's graph has edges only between distinct variables)."""
        graph = nx.Graph()
        graph.add_nodes_from(self._variables)
        for atom in self.binary_atoms():
            first, second = atom.args
            if first != second:
                graph.add_edge(first, second)
        return graph

    @property
    def is_connected(self) -> bool:
        graph = self.gaifman()
        if graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(graph)

    @property
    def is_tree_shaped(self) -> bool:
        """True when the Gaifman graph is a tree (acyclic and connected)."""
        graph = self.gaifman()
        if graph.number_of_nodes() == 0:
            return True
        return nx.is_tree(graph)

    def leaves(self) -> List[Variable]:
        """Degree-<=1 vertices of the Gaifman graph (for tree-shaped CQs)."""
        graph = self.gaifman()
        return sorted(v for v in graph.nodes if graph.degree(v) <= 1)

    @property
    def number_of_leaves(self) -> int:
        return len(self.leaves())

    @property
    def is_linear(self) -> bool:
        """A tree with at most two leaves (a chain)."""
        return self.is_tree_shaped and self.number_of_leaves <= 2

    def treewidth(self) -> int:
        """The treewidth of the Gaifman graph (exact for trees, min-fill
        upper bound otherwise)."""
        from .treedecomp import tree_decomposition
        return tree_decomposition(self).width

    # -- structural helpers ------------------------------------------------

    def distances_from(self, root: Variable) -> Dict[Variable, int]:
        """Graph distance of every variable from ``root``."""
        graph = self.gaifman()
        return dict(nx.single_source_shortest_path_length(graph, root))

    def restrict_to(self, variables: Iterable[Variable],
                    answer_vars: Sequence[Variable]) -> "CQ":
        """The sub-CQ of all atoms whose variables lie within ``variables``."""
        keep = set(variables)
        atoms = [atom for atom in self.atoms if set(atom.args) <= keep]
        return CQ(atoms, answer_vars)

    def connected_components(self) -> List[FrozenSet[Variable]]:
        graph = self.gaifman()
        return [frozenset(component)
                for component in nx.connected_components(graph)]

    # -- parsing and display ------------------------------------------------

    _ATOM_RE = re.compile(r"([A-Za-z_][\w'\-]*)\(\s*([\w']+)\s*"
                          r"(?:,\s*([\w']+)\s*)?\)")

    @classmethod
    def parse(cls, body: str, answer_vars: Sequence[Variable] = ()) -> "CQ":
        """Parse a comma/ampersand-separated list of atoms, e.g.
        ``CQ.parse("R(x0,x1), S(x1,x2)", answer_vars=["x0"])``."""
        atoms = []
        for match in cls._ATOM_RE.finditer(body):
            predicate, first, second = match.groups()
            args = (first,) if second is None else (first, second)
            atoms.append(Atom(predicate, args))
        if not atoms:
            raise ValueError(f"no atoms found in {body!r}")
        return cls(atoms, answer_vars)

    def __iter__(self):
        return iter(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self.atoms

    def __eq__(self, other) -> bool:
        if not isinstance(other, CQ):
            return NotImplemented
        return (frozenset(self.atoms) == frozenset(other.atoms)
                and self.answer_vars == other.answer_vars)

    def __hash__(self) -> int:
        return hash((frozenset(self.atoms), self.answer_vars))

    def __str__(self) -> str:
        head = f"q({', '.join(self.answer_vars)})"
        body = " & ".join(str(atom) for atom in self.atoms)
        return f"{head} :- {body}"

    def __repr__(self) -> str:
        return f"CQ({self})"


def chain_cq(labels: Sequence[str], prefix: str = "x",
             answer_ends: bool = True) -> CQ:
    """The linear CQ ``L0(x0,x1) & L1(x1,x2) & ...`` used by the paper's
    experiments (Section 6), e.g. ``chain_cq("RSR")``.

    With ``answer_ends`` the two endpoints are answer variables, matching
    the running example ``q(x0, x7)`` of Example 8.
    """
    atoms = [binary(label, f"{prefix}{i}", f"{prefix}{i + 1}")
             for i, label in enumerate(labels)]
    if not atoms:
        raise ValueError("chain_cq needs at least one label")
    answer = (f"{prefix}0", f"{prefix}{len(labels)}") if answer_ends else ()
    return CQ(atoms, answer)
