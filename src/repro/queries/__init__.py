"""Conjunctive-query substrate: CQs, shapes and tree decompositions."""

from .cq import CQ, Atom, Variable, binary, chain_cq, role_atom, unary
from .fo import FOFormula, cq_to_fo, evaluate_fo, fo_and, fo_or, holds_fo
from .pe import And, Or, PEAtom, PEEq, PEQuery, evaluate_pe, pe_to_ndl
from .treedecomp import TreeDecomposition, tree_decomposition

__all__ = [
    "And",
    "Atom",
    "CQ",
    "TreeDecomposition",
    "Variable",
    "Or",
    "PEAtom",
    "PEEq",
    "PEQuery",
    "FOFormula",
    "binary",
    "chain_cq",
    "cq_to_fo",
    "evaluate_fo",
    "fo_and",
    "fo_or",
    "holds_fo",
    "role_atom",
    "evaluate_pe",
    "pe_to_ndl",
    "tree_decomposition",
    "unary",
]
