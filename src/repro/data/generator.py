"""Synthetic data generators for the paper's experiments (Appendix D.2).

The paper evaluates rewritings over Erdős–Rényi random graphs with
parameters ``V`` (number of vertices), ``p`` (probability of an
``R``-edge) and ``q`` (probability of unary marks at a vertex); no
``S``-edges are generated, so matches of the ``S``-atoms of the query
sequences must come from the ontology (via the surrogate ``A_P``/``A_P-``
marks).  ``paper_datasets`` reproduces Table 2's four parameter settings,
optionally scaled down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from .abox import ABox


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 2."""

    name: str
    vertices: int
    edge_probability: float
    mark_probability: float

    @property
    def average_degree(self) -> float:
        return self.vertices * self.edge_probability


#: The four datasets of Table 2 (1.ttl .. 4.ttl).
TABLE2_SPECS: Tuple[DatasetSpec, ...] = (
    DatasetSpec("1.ttl", 1000, 0.050, 0.050),
    DatasetSpec("2.ttl", 5000, 0.002, 0.004),
    DatasetSpec("3.ttl", 10000, 0.002, 0.004),
    DatasetSpec("4.ttl", 20000, 0.002, 0.010),
)


def erdos_renyi_abox(vertices: int, edge_probability: float,
                     mark_probability: float,
                     edge_predicates: Sequence[str] = ("R",),
                     mark_predicates: Sequence[str] = ("A_P", "A_P-"),
                     seed: int = 0) -> ABox:
    """An Erdős–Rényi data instance as in Appendix D.2.

    Directed edges ``P(v_i, v_j)`` are drawn independently with
    probability ``edge_probability`` for each ordered pair with
    ``i != j``; each unary mark is drawn per vertex with probability
    ``mark_probability``.  For large sparse graphs the edge set is
    sampled by skipping geometrically many pairs, so generation is
    ``O(#edges)`` rather than ``O(V^2)``.
    """
    rng = random.Random(seed)
    abox = ABox()
    names = [f"v{i}" for i in range(vertices)]
    for name in names:
        for predicate in mark_predicates:
            if rng.random() < mark_probability:
                abox.add(predicate, name)
    total_pairs = vertices * (vertices - 1)
    for predicate in edge_predicates:
        for i, j in _sample_pairs(rng, vertices, total_pairs,
                                  edge_probability):
            abox.add(predicate, names[i], names[j])
    return abox


def _sample_pairs(rng: random.Random, vertices: int, total_pairs: int,
                  probability: float):
    """Geometric skipping over the ordered pairs (i, j), i != j."""
    if probability <= 0:
        return
    if probability >= 1:
        for i in range(vertices):
            for j in range(vertices):
                if i != j:
                    yield i, j
        return
    import math

    log_q = math.log(1.0 - probability)
    position = -1
    while True:
        gap = int(math.log(max(rng.random(), 1e-300)) / log_q)
        position += gap + 1
        if position >= total_pairs:
            return
        i, remainder = divmod(position, vertices - 1)
        j = remainder if remainder < i else remainder + 1
        yield i, j


def paper_datasets(scale: float = 1.0, seed: int = 0) -> Dict[str, ABox]:
    """The four Table 2 datasets; ``scale`` shrinks the vertex counts
    (keeping average degrees) so the suite runs on a laptop."""
    datasets = {}
    for index, spec in enumerate(TABLE2_SPECS):
        vertices = max(10, int(spec.vertices * scale))
        # keep the average degree of the paper by rescaling p
        probability = min(1.0, spec.average_degree / max(vertices - 1, 1))
        datasets[spec.name] = erdos_renyi_abox(
            vertices, probability, spec.mark_probability, seed=seed + index)
    return datasets


def chain_abox(labels: Sequence[str], prefix: str = "c") -> ABox:
    """A single labelled chain ``label_i(c_i, c_{i+1})`` — handy in tests."""
    abox = ABox()
    for i, label in enumerate(labels):
        abox.add(label, f"{prefix}{i}", f"{prefix}{i + 1}")
    return abox


#: The component shapes :func:`multi_component_abox` can generate.
COMPONENT_SHAPES = ("chain", "star", "random", "mixed")


def multi_component_abox(components: int, component_size: int,
                         shape: str = "mixed",
                         edge_predicates: Sequence[str] = ("R", "S"),
                         mark_predicates: Sequence[str] = ("A_P", "A_P-"),
                         mark_probability: float = 0.25,
                         seed: int = 0) -> ABox:
    """A seedable instance of ``components`` disjoint Gaifman components.

    The workload the sharding layer is built for: every component has
    ``component_size`` vertices (named ``g<i>_<j>``, so components
    never share constants) wired as a *chain*, a *star*, a *random*
    connected graph (a random spanning tree plus a few chords), or a
    round-robin *mixed* of the three; unary marks are drawn per vertex
    with ``mark_probability``.  Deterministic in ``seed``.
    """
    if shape not in COMPONENT_SHAPES:
        raise ValueError(f"unknown shape {shape!r}; "
                         f"expected one of {COMPONENT_SHAPES}")
    rng = random.Random(seed)
    abox = ABox()
    rotation = ("chain", "star", "random")
    for index in range(components):
        kind = rotation[index % len(rotation)] if shape == "mixed" else shape
        names = [f"g{index}_{j}" for j in range(component_size)]
        edge = 0
        if kind == "chain":
            for j in range(len(names) - 1):
                abox.add(edge_predicates[edge % len(edge_predicates)],
                         names[j], names[j + 1])
                edge += 1
        elif kind == "star":
            for j in range(1, len(names)):
                abox.add(edge_predicates[edge % len(edge_predicates)],
                         names[0], names[j])
                edge += 1
        else:  # random: spanning tree + ~25% chords, always connected
            for j in range(1, len(names)):
                abox.add(rng.choice(list(edge_predicates)),
                         names[rng.randrange(j)], names[j])
            for _ in range(max(1, len(names) // 4)):
                first, second = rng.choice(names), rng.choice(names)
                if first != second:
                    abox.add(rng.choice(list(edge_predicates)),
                             first, second)
        for name in names:
            for predicate in mark_predicates:
                if rng.random() < mark_probability:
                    abox.add(predicate, name)
    return abox


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, scalable multi-component workload preset."""

    name: str
    components: int
    component_size: int
    shape: str
    mark_probability: float = 0.25

    def generate(self, scale: float = 1.0, seed: int = 0) -> ABox:
        return multi_component_abox(
            max(1, int(self.components * scale)), self.component_size,
            shape=self.shape, mark_probability=self.mark_probability,
            seed=seed)


#: Reproducible workloads for the sharding benchmarks and tests:
#: ``scale`` multiplies the component count (keeping component sizes),
#: so bigger scales mean more shards' worth of parallel work, not
#: bigger components.
WORKLOAD_PRESETS: Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in (
        WorkloadSpec("chain-small", components=24, component_size=8,
                     shape="chain"),
        WorkloadSpec("chain-large", components=200, component_size=25,
                     shape="chain"),
        WorkloadSpec("star-small", components=24, component_size=8,
                     shape="star"),
        WorkloadSpec("star-large", components=200, component_size=25,
                     shape="star"),
        WorkloadSpec("random-small", components=24, component_size=8,
                     shape="random"),
        WorkloadSpec("random-large", components=160, component_size=30,
                     shape="random"),
        WorkloadSpec("mixed-small", components=30, component_size=8,
                     shape="mixed"),
        WorkloadSpec("mixed-large", components=240, component_size=20,
                     shape="mixed"),
    )
}


def workload_abox(preset: str, scale: float = 1.0, seed: int = 0) -> ABox:
    """Generate a :data:`WORKLOAD_PRESETS` entry at the given scale."""
    try:
        spec = WORKLOAD_PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown workload preset {preset!r}; expected one of "
            f"{sorted(WORKLOAD_PRESETS)}") from None
    return spec.generate(scale=scale, seed=seed)


def random_abox(individuals: int, atoms: int,
                unary_predicates: Sequence[str],
                binary_predicates: Sequence[str], seed: int = 0) -> ABox:
    """A uniformly random small ABox, used by the property-based tests."""
    rng = random.Random(seed)
    abox = ABox()
    names = [f"a{i}" for i in range(individuals)]
    for _ in range(atoms):
        if unary_predicates and (not binary_predicates or rng.random() < 0.4):
            abox.add(rng.choice(unary_predicates), rng.choice(names))
        elif binary_predicates:
            abox.add(rng.choice(binary_predicates), rng.choice(names),
                     rng.choice(names))
    return abox
