"""Data-instance substrate: ABoxes and synthetic data generators."""

from .abox import ABox, Constant, GroundAtom
from .generator import (
    TABLE2_SPECS,
    DatasetSpec,
    chain_abox,
    erdos_renyi_abox,
    paper_datasets,
    random_abox,
)

__all__ = [
    "ABox",
    "Constant",
    "DatasetSpec",
    "GroundAtom",
    "TABLE2_SPECS",
    "chain_abox",
    "erdos_renyi_abox",
    "paper_datasets",
    "random_abox",
]
