"""Data-instance substrate: ABoxes and synthetic data generators."""

from .abox import ABox, Constant, GroundAtom
from .generator import (
    COMPONENT_SHAPES,
    TABLE2_SPECS,
    WORKLOAD_PRESETS,
    DatasetSpec,
    WorkloadSpec,
    chain_abox,
    erdos_renyi_abox,
    multi_component_abox,
    paper_datasets,
    random_abox,
    workload_abox,
)

__all__ = [
    "ABox",
    "COMPONENT_SHAPES",
    "Constant",
    "DatasetSpec",
    "GroundAtom",
    "TABLE2_SPECS",
    "WORKLOAD_PRESETS",
    "WorkloadSpec",
    "chain_abox",
    "erdos_renyi_abox",
    "multi_component_abox",
    "paper_datasets",
    "random_abox",
    "workload_abox",
]
