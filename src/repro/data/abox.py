"""Data instances (ABoxes): finite sets of unary and binary ground atoms."""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..ontology.terms import TOP, Atomic, Exists, Role

Constant = str
GroundAtom = Tuple[str, Tuple[Constant, ...]]


@dataclass
class FactArrays:
    """An ABox flattened to interned fact arrays.

    ``names`` maps dense integer codes back to constants; every
    relation is one flat ``array('I')`` of codes — one code per row
    for unary predicates, two for binary.  This is the payload of the
    shared-memory shard transport (:mod:`repro.shard.transport`) and
    the fast-construction input of
    :meth:`repro.engine.database.Database.from_arrays`.
    """

    names: List[str]
    unary: Dict[str, array] = field(default_factory=dict)
    binary: Dict[str, array] = field(default_factory=dict)

    def atom_count(self) -> int:
        return (sum(len(codes) for codes in self.unary.values())
                + sum(len(codes) // 2 for codes in self.binary.values()))


class ABox:
    """A data instance ``A``: unary atoms ``A(a)`` and binary ``P(a, b)``.

    The class also offers the derived views used in Section 2:
    ``rho(a, b) in A`` for roles (``P(a, b)`` for direct roles and
    ``P(b, a)`` for inverses) and completion w.r.t. a TBox.
    """

    def __init__(self, atoms: Iterable[GroundAtom] = ()):
        self._unary: Dict[str, Set[Constant]] = {}
        self._binary: Dict[str, Set[Tuple[Constant, Constant]]] = {}
        #: constant -> number of argument positions it fills; the keys
        #: are ``ind(A)``, and counting makes removal O(1) per atom
        self._occurrences: Dict[Constant, int] = {}
        #: bumped on every effective mutation; lets decoded instances
        #: prove their cached :class:`FactArrays` are still current
        self._version = 0
        self._decoded_arrays: Optional[Tuple[int, FactArrays]] = None
        for predicate, args in atoms:
            self.add(predicate, *args)

    # -- construction -----------------------------------------------------

    def add(self, predicate: str, *args: Constant) -> None:
        """Add a ground atom ``predicate(args)`` (idempotent)."""
        if len(args) == 1:
            relation = self._unary.setdefault(predicate, set())
            if args[0] in relation:
                return
            relation.add(args[0])
        elif len(args) == 2:
            relation = self._binary.setdefault(predicate, set())
            if tuple(args) in relation:
                return
            relation.add(tuple(args))
        else:
            raise ValueError("ABox atoms must be unary or binary")
        self._version += 1
        for constant in args:
            self._occurrences[constant] = \
                self._occurrences.get(constant, 0) + 1

    def discard(self, predicate: str, *args: Constant) -> bool:
        """Remove a ground atom; ``True`` if it was present.

        Constants that no longer occur in any atom leave
        :attr:`individuals`, so an updated ABox is indistinguishable
        from one freshly built over the remaining atoms (the invariant
        the incremental-update layer of :mod:`repro.service` relies
        on).
        """
        if len(args) == 1:
            relation = self._unary.get(predicate)
            present = relation is not None and args[0] in relation
            if present:
                relation.discard(args[0])
                if not relation:
                    del self._unary[predicate]
        elif len(args) == 2:
            relation = self._binary.get(predicate)
            present = relation is not None and tuple(args) in relation
            if present:
                relation.discard(tuple(args))
                if not relation:
                    del self._binary[predicate]
        else:
            raise ValueError("ABox atoms must be unary or binary")
        if present:
            self._version += 1
            for constant in args:
                remaining = self._occurrences[constant] - 1
                if remaining:
                    self._occurrences[constant] = remaining
                else:
                    del self._occurrences[constant]
        return present

    @classmethod
    def parse(cls, text: str) -> "ABox":
        """Parse atoms like ``A(a), P(a, b)`` (comma/newline separated)."""
        import re

        abox = cls()
        pattern = re.compile(
            r"([A-Za-z_][\w'\-]*)\(\s*([\w'.]+)\s*(?:,\s*([\w'.]+)\s*)?\)")
        for match in pattern.finditer(text):
            predicate, first, second = match.groups()
            if second is None:
                abox.add(predicate, first)
            else:
                abox.add(predicate, first, second)
        return abox

    # -- interned fact arrays ----------------------------------------------

    def to_fact_arrays(self) -> FactArrays:
        """Flatten to :class:`FactArrays` (constants interned to dense
        codes, relations as flat code arrays); deterministic order."""
        codes: Dict[Constant, int] = {}
        names: List[Constant] = []

        def intern(constant: Constant) -> int:
            code = codes.get(constant)
            if code is None:
                code = len(names)
                codes[constant] = code
                names.append(constant)
            return code

        arrays = FactArrays(names)
        for predicate in sorted(self._unary):
            arrays.unary[predicate] = array(
                "I", (intern(c) for c in sorted(self._unary[predicate])))
        for predicate in sorted(self._binary):
            flat = array("I")
            for first, second in sorted(self._binary[predicate]):
                flat.append(intern(first))
                flat.append(intern(second))
            arrays.binary[predicate] = flat
        return arrays

    @classmethod
    def from_fact_arrays(cls, arrays: FactArrays) -> "ABox":
        """Rebuild an instance from :class:`FactArrays` in bulk — the
        relations are materialised set-at-a-time instead of atom-by-
        atom ``add`` calls (the shard-worker attach path).  The source
        arrays are cached so an unmutated instance can hand them to
        array-backed consumers (:meth:`cached_fact_arrays`)."""
        abox = cls()
        names = arrays.names
        occurrences = abox._occurrences
        for predicate, codes in arrays.unary.items():
            relation = {names[code] for code in codes}
            if not relation:
                continue
            abox._unary[predicate] = relation
            for constant in relation:
                occurrences[constant] = occurrences.get(constant, 0) + 1
        for predicate, codes in arrays.binary.items():
            paired = iter(codes)
            relation = {(names[a], names[b]) for a, b in zip(paired, paired)}
            if not relation:
                continue
            abox._binary[predicate] = relation
            for first, second in relation:
                occurrences[first] = occurrences.get(first, 0) + 1
                occurrences[second] = occurrences.get(second, 0) + 1
        abox._decoded_arrays = (abox._version, arrays)
        return abox

    def cached_fact_arrays(self) -> Optional[FactArrays]:
        """The :class:`FactArrays` this instance was decoded from, if
        it has not been mutated since (else ``None``)."""
        cached = self._decoded_arrays
        if cached is not None and cached[0] == self._version:
            return cached[1]
        return None

    # -- access -----------------------------------------------------------

    @property
    def individuals(self) -> FrozenSet[Constant]:
        """``ind(A)``."""
        return frozenset(self._occurrences)

    @property
    def unary_predicates(self) -> FrozenSet[str]:
        return frozenset(self._unary)

    @property
    def binary_predicates(self) -> FrozenSet[str]:
        return frozenset(self._binary)

    def unary(self, predicate: str) -> FrozenSet[Constant]:
        return frozenset(self._unary.get(predicate, ()))

    def binary(self, predicate: str) -> FrozenSet[Tuple[Constant, Constant]]:
        return frozenset(self._binary.get(predicate, ()))

    def has_unary(self, predicate: str, constant: Constant) -> bool:
        return constant in self._unary.get(predicate, ())

    def has_binary(self, predicate: str, first: Constant,
                   second: Constant) -> bool:
        return (first, second) in self._binary.get(predicate, ())

    def has_role(self, role: Role, first: Constant, second: Constant) -> bool:
        """``role(first, second) in A`` in the paper's derived sense."""
        if role.inverted:
            return self.has_binary(role.name, second, first)
        return self.has_binary(role.name, first, second)

    def role_pairs(self, role: Role) -> Iterator[Tuple[Constant, Constant]]:
        """All pairs ``(a, b)`` with ``role(a, b) in A``."""
        pairs = self._binary.get(role.name, ())
        if role.inverted:
            return ((second, first) for first, second in pairs)
        return iter(pairs)

    def atoms(self) -> Iterator[GroundAtom]:
        for predicate, constants in sorted(self._unary.items()):
            for constant in sorted(constants):
                yield (predicate, (constant,))
        for predicate, pairs in sorted(self._binary.items()):
            for pair in sorted(pairs):
                yield (predicate, pair)

    def __len__(self) -> int:
        return (sum(len(v) for v in self._unary.values())
                + sum(len(v) for v in self._binary.values()))

    def __contains__(self, atom: GroundAtom) -> bool:
        predicate, args = atom
        if len(args) == 1:
            return self.has_unary(predicate, args[0])
        return self.has_binary(predicate, *args)

    def __repr__(self) -> str:
        return (f"ABox({len(self)} atoms, "
                f"{len(self._occurrences)} individuals)")

    # -- completion ---------------------------------------------------------

    def complete(self, tbox) -> "ABox":
        """The completion of ``A`` for ``T`` (Section 2): the closure of
        the data under all entailed ground atoms over ``ind(A)``.

        Since OWL 2 QL axioms have single atoms on the left, completion is
        a single pass over the data through the concept/role hierarchies.
        """
        completed = ABox()
        entailed_concepts: Dict[Constant, Set] = {
            individual: set() for individual in self._occurrences}
        for predicate, constants in self._unary.items():
            supers = tbox.concept_supers(Atomic(predicate))
            for constant in constants:
                entailed_concepts[constant].update(supers)
        for predicate, pairs in self._binary.items():
            role = Role(predicate)
            forward = tbox.concept_supers(Exists(role))
            backward = tbox.concept_supers(Exists(role.inverse()))
            role_supers = tbox.role_supers(role)
            for first, second in pairs:
                entailed_concepts[first].update(forward)
                entailed_concepts[second].update(backward)
                for sup in role_supers:
                    if sup.inverted:
                        completed.add(sup.name, second, first)
                    else:
                        completed.add(sup.name, first, second)
        for role in tbox.roles:
            if tbox.is_reflexive(role) and not role.inverted:
                for individual in self._occurrences:
                    completed.add(role.name, individual, individual)
        top_supers = tbox.concept_supers(TOP)
        for individual, concepts in entailed_concepts.items():
            concepts.update(top_supers)
            for concept in concepts:
                if isinstance(concept, Atomic):
                    completed.add(concept.name, individual)
        # keep any data predicates outside the ontology signature
        for predicate, constants in self._unary.items():
            for constant in constants:
                completed.add(predicate, constant)
        for predicate, pairs in self._binary.items():
            for pair in pairs:
                completed.add(predicate, *pair)
        return completed

    def is_complete_for(self, tbox) -> bool:
        """True if ``A`` already contains every entailed ground atom."""
        completed = self.complete(tbox)
        return len(completed) == len(self)
