"""Unified evaluation layer: load data once, answer many queries.

The subsystem has two halves:

* :class:`~repro.engine.database.Database` — a data instance loaded
  once: constants interned to dense integers, per-predicate hash
  indexes memoised by bound-argument positions and shared across
  queries (the native engine's storage);
* :class:`~repro.engine.backends.Engine` — the common protocol over the
  native Python evaluator, the two SQLite modes and the optional
  DuckDB backend, built via
  :func:`~repro.engine.backends.create_engine`.

:class:`repro.rewriting.api.AnswerSession` sits on top of this layer
and adds the rewriting pipeline (completion, rewriters, optimiser,
magic sets).
"""

from .database import Database, build_index
from .backends import (
    ENGINES,
    SQL_ENGINES,
    DuckDBBackend,
    Engine,
    PythonEngine,
    SQLiteEngine,
    available_engines,
    create_engine,
    engine_available,
)

__all__ = [
    "Database",
    "DuckDBBackend",
    "ENGINES",
    "Engine",
    "PythonEngine",
    "SQL_ENGINES",
    "SQLiteEngine",
    "available_engines",
    "build_index",
    "create_engine",
    "engine_available",
]
