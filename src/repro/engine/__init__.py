"""Unified evaluation layer: load data once, answer many queries.

The subsystem has two halves:

* :class:`~repro.engine.database.Database` — a data instance loaded
  once: constants interned to dense integers, per-predicate hash
  indexes memoised by bound-argument positions and shared across
  queries (the native engine's storage);
* :class:`~repro.engine.backends.Engine` — the common protocol over the
  native Python evaluator and the two SQLite modes, built via
  :func:`~repro.engine.backends.create_engine`.

:class:`repro.rewriting.api.AnswerSession` sits on top of this layer
and adds the rewriting pipeline (completion, rewriters, optimiser,
magic sets).
"""

from .database import Database, build_index
from .backends import (
    ENGINES,
    Engine,
    PythonEngine,
    SQLiteEngine,
    create_engine,
)

__all__ = [
    "Database",
    "ENGINES",
    "Engine",
    "PythonEngine",
    "SQLiteEngine",
    "build_index",
    "create_engine",
]
