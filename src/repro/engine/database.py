"""Interned, indexed EDB storage shared across query evaluations.

The paper's experiments (Tables 3-5) evaluate *many* NDL rewritings of
the same OMQ over the *same* data instance.  :class:`Database` is the
load-once side of that workload: constants are interned to dense
integers a single time, per-predicate hash indexes are built on demand
— keyed by the tuple of bound argument positions a join probes — and
both survive across queries, so only the first evaluation of a session
pays the loading cost.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..data.abox import ABox
from ..datalog.program import ADOM

#: A stored fact: constants interned to dense integer codes.
IntRow = Tuple[int, ...]
IntRelation = Set[IntRow]
#: Hash index of a relation on argument positions.  Keys are the bare
#: integer code for a single position and a tuple of codes otherwise
#: (probes must build their keys the same way).
Index = Dict[object, Tuple[IntRow, ...]]

_EMPTY_RELATION: IntRelation = frozenset()


def build_index(relation: Iterable[IntRow],
                positions: Tuple[int, ...]) -> Index:
    """Group ``relation`` by the projection onto ``positions``."""
    if not positions:
        rows = tuple(relation)
        return {(): rows} if rows else {}
    buckets: Dict[object, List[IntRow]] = {}
    if len(positions) == 1:
        position = positions[0]
        for row in relation:
            buckets.setdefault(row[position], []).append(row)
    else:
        project = itemgetter(*positions)
        for row in relation:
            buckets.setdefault(project(row), []).append(row)
    return {key: tuple(rows) for key, rows in buckets.items()}


class Database:
    """A data instance loaded once: interned constants plus indexes.

    Construction interns every constant of ``abox`` (and of the
    optional ``extra_relations``, which may have arbitrary arity and
    override same-named ABox predicates, as in
    :func:`repro.datalog.evaluate.evaluate`) and materialises the EDB
    relations over integer codes, including the active-domain relation
    ``__adom__``.  :meth:`index` memoises one hash index per
    ``(predicate, bound positions)`` pair for the lifetime of the
    database, which is what makes repeated evaluation over the same
    instance cheap.
    """

    def __init__(self, abox: ABox,
                 extra_relations: Optional[
                     Mapping[str, Iterable[Tuple[str, ...]]]] = None):
        self._codes: Dict[str, int] = {}
        self._names: List[str] = []
        self._relations: Dict[str, IntRelation] = {}
        self._indexes: Dict[Tuple[str, Tuple[int, ...]], Index] = {}
        intern = self.intern
        for predicate in abox.unary_predicates:
            self._relations[predicate] = {
                (intern(c),) for c in abox.unary(predicate)}
        for predicate in abox.binary_predicates:
            self._relations[predicate] = {
                (intern(a), intern(b)) for a, b in abox.binary(predicate)}
        adom = {intern(c) for c in abox.individuals}
        if extra_relations:
            for name, rows in extra_relations.items():
                stored = {tuple(intern(c) for c in row) for row in rows}
                self._relations[name] = stored
                for row in stored:
                    adom.update(row)
        self._relations[ADOM] = {(code,) for code in adom}

    @classmethod
    def from_arrays(cls, arrays,
                    extra_relations: Optional[
                        Mapping[str, Iterable[Tuple[str, ...]]]] = None
                    ) -> "Database":
        """Array-backed construction from interned
        :class:`~repro.data.abox.FactArrays`.

        The codes are adopted as-is — no constant is re-hashed or
        re-interned — so a shard worker that decoded its data from the
        shared-memory transport rebuilds its database by bulk set
        construction over integers.  Observationally identical to
        ``Database(ABox.from_fact_arrays(arrays))``.
        """
        database = cls.__new__(cls)
        database._names = list(arrays.names)
        database._codes = {name: code
                           for code, name in enumerate(database._names)}
        database._relations = {}
        database._indexes = {}
        adom: Set[int] = set()
        for predicate, codes in arrays.unary.items():
            database._relations[predicate] = {(code,) for code in codes}
            adom.update(codes)
        for predicate, codes in arrays.binary.items():
            paired = iter(codes)
            database._relations[predicate] = set(zip(paired, paired))
            adom.update(codes)
        if extra_relations:
            intern = database.intern
            for name, rows in extra_relations.items():
                stored = {tuple(intern(c) for c in row) for row in rows}
                database._relations[name] = stored
                for row in stored:
                    adom.update(row)
        database._relations[ADOM] = {(code,) for code in adom}
        return database

    # -- constants ---------------------------------------------------------

    def intern(self, constant: str) -> int:
        """The integer code of ``constant`` (assigned on first use)."""
        code = self._codes.get(constant)
        if code is None:
            code = len(self._names)
            self._codes[constant] = code
            self._names.append(constant)
        return code

    def decode(self, code: int) -> str:
        return self._names[code]

    def decode_row(self, row: IntRow) -> Tuple[str, ...]:
        names = self._names
        return tuple(names[code] for code in row)

    def decode_rows(self, rows: Iterable[IntRow]) -> Set[Tuple[str, ...]]:
        names = self._names
        return {tuple(names[code] for code in row) for row in rows}

    @property
    def constants(self) -> int:
        """Number of distinct interned constants."""
        return len(self._names)

    # -- relations ---------------------------------------------------------

    @property
    def predicates(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def relation(self, predicate: str) -> IntRelation:
        """The stored facts of ``predicate`` (empty if unknown)."""
        return self._relations.get(predicate, _EMPTY_RELATION)

    def size(self, predicate: str) -> int:
        return len(self._relations.get(predicate, _EMPTY_RELATION))

    def index(self, predicate: str, positions: Tuple[int, ...]) -> Index:
        """The hash index of ``predicate`` on ``positions``, memoised.

        A join that has bound the arguments at ``positions`` probes this
        index instead of scanning the relation; the same index also
        yields the bound-prefix selectivity used by the join planner
        (:meth:`distinct_keys`).
        """
        key = (predicate, positions)
        index = self._indexes.get(key)
        if index is None:
            index = build_index(self.relation(predicate), positions)
            self._indexes[key] = index
        return index

    def distinct_keys(self, predicate: str,
                      positions: Tuple[int, ...]) -> int:
        """Distinct values of the projection onto ``positions``."""
        return len(self.index(predicate, positions))

    # -- incremental updates -----------------------------------------------

    def insert_facts(self, facts: Mapping[str, Iterable[Tuple[str, ...]]],
                     ) -> int:
        """Insert named rows in place; returns the number actually added.

        The delta path of :mod:`repro.service.updates`: new constants
        are interned, previously unseen ones join ``__adom__``, and
        every memoised index of a touched predicate is maintained
        *incrementally* (new rows are appended to their buckets) — no
        index is dropped or rebuilt on insertion.
        """
        intern = self.intern
        added = 0
        new_adom: Set[int] = set()
        adom = self._relations.setdefault(ADOM, set())
        for predicate, rows in facts.items():
            relation = self._relations.get(predicate)
            if relation is None:
                relation = self._relations[predicate] = set()
            fresh = []
            for row in rows:
                coded = tuple(intern(c) for c in row)
                if coded not in relation:
                    relation.add(coded)
                    fresh.append(coded)
                    for code in coded:
                        if (code,) not in adom:
                            new_adom.add(code)
            if fresh:
                added += len(fresh)
                self._extend_indexes(predicate, fresh)
        if new_adom:
            adom_rows = [(code,) for code in new_adom]
            adom.update(adom_rows)
            self._extend_indexes(ADOM, adom_rows)
        return added

    def delete_facts(self, facts: Mapping[str, Iterable[Tuple[str, ...]]],
                     removed_constants: Iterable[str] = ()) -> int:
        """Remove named rows in place; returns the number removed.

        Deletion falls back to *index invalidation*: memoised indexes
        of the touched predicates are dropped and rebuilt lazily on the
        next probe (untouched predicates keep theirs).
        ``removed_constants`` names constants that left the data
        instance entirely — they are removed from ``__adom__`` (their
        interned codes remain allocated, which is unobservable through
        the relations).
        """
        codes = self._codes
        removed = 0
        for predicate, rows in facts.items():
            relation = self._relations.get(predicate)
            if not relation:
                continue
            touched = False
            for row in rows:
                try:
                    coded = tuple(codes[c] for c in row)
                except KeyError:
                    continue
                if coded in relation:
                    relation.discard(coded)
                    removed += 1
                    touched = True
            if touched:
                self._drop_indexes(predicate)
        gone = [codes[c] for c in removed_constants if c in codes]
        if gone:
            adom = self._relations.setdefault(ADOM, set())
            for code in gone:
                adom.discard((code,))
            self._drop_indexes(ADOM)
        return removed

    def _extend_indexes(self, predicate: str,
                        rows: Iterable[IntRow]) -> None:
        """Append ``rows`` to every memoised index of ``predicate``.

        Rows are grouped per bucket key first so every bucket is
        extended with one concatenation, keeping bulk insertion linear.
        """
        rows = tuple(rows)
        for (name, positions), index in self._indexes.items():
            if name != predicate:
                continue
            fresh: Dict[object, List[IntRow]] = {}
            for row in rows:
                if not positions:
                    key: object = ()
                elif len(positions) == 1:
                    key = row[positions[0]]
                else:
                    key = tuple(row[p] for p in positions)
                fresh.setdefault(key, []).append(row)
            for key, bucket in fresh.items():
                index[key] = index.get(key, ()) + tuple(bucket)

    def _drop_indexes(self, predicate: str) -> None:
        for key in [key for key in self._indexes if key[0] == predicate]:
            del self._indexes[key]

    def __repr__(self) -> str:
        facts = sum(len(rows) for name, rows in self._relations.items()
                    if name != ADOM)
        return (f"Database({facts} facts, {self.constants} constants, "
                f"{len(self._indexes)} indexes)")
