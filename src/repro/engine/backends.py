"""One interface over the Python, SQLite and DuckDB evaluators.

Section 6 compares a materialise-everything datalog engine (the RDFox
stand-in) with running the rewritings as views in a standard DBMS.
:func:`create_engine` hides the choice behind a single :class:`Engine`
protocol — build one per data instance, then call
:meth:`Engine.evaluate` for every rewriting; all backends keep the
loaded data across calls and return identical answer sets (the parity
tests in ``tests/test_engine.py`` enforce this).

:data:`ENGINES` is the closed registry of names; the ``duckdb`` entry
needs the optional ``duckdb`` package, so callers that enumerate
engines dynamically should use :func:`available_engines` (or check
:func:`engine_available`) rather than assume every registered name can
be constructed.
"""

from __future__ import annotations

import importlib.util
from typing import Iterable, Mapping, Optional, Tuple

from ..data.abox import ABox
from ..datalog.evaluate import EvaluationResult, evaluate_on
from ..datalog.program import NDLQuery
from .database import Database

#: The evaluation backends, in the order of Appendix D.4's comparison.
ENGINES = ("python", "sql", "sql-views", "duckdb")

#: The backends that evaluate by compiling to SQL (and hence accept the
#: ``optimize_sql`` knob meaningfully).
SQL_ENGINES = ("sql", "sql-views", "duckdb")

ExtraRelations = Optional[Mapping[str, Iterable[Tuple[str, ...]]]]


def engine_available(name: str) -> bool:
    """Whether the named backend can be constructed in this
    environment (``duckdb`` needs its optional package)."""
    if name not in ENGINES:
        return False
    if name == "duckdb":
        return importlib.util.find_spec("duckdb") is not None
    return True


def available_engines() -> Tuple[str, ...]:
    """The subset of :data:`ENGINES` constructible right now."""
    return tuple(name for name in ENGINES if engine_available(name))


class Engine:
    """A loaded data instance that evaluates NDL queries.

    Subclasses load the data exactly once (in ``__init__``) and may
    cache whatever per-instance structures they like; ``evaluate`` must
    be callable any number of times with different queries.
    """

    #: The :data:`ENGINES` name this backend answers to.
    name: str = "?"

    def evaluate(self, query: NDLQuery,
                 optimize_sql: bool = False) -> EvaluationResult:
        """Evaluate one query.  ``optimize_sql`` asks SQL-compiling
        backends to run the :mod:`repro.sql.optimize` pass pipeline;
        non-SQL backends ignore it."""
        raise NotImplementedError

    def apply_delta(self, inserts: Mapping[str, Iterable[Tuple[str, ...]]],
                    deletes: Mapping[str, Iterable[Tuple[str, ...]]],
                    adom_add: Iterable[str] = (),
                    adom_remove: Iterable[str] = ()) -> None:
        """Apply an incremental data update to the loaded instance.

        ``deletes`` are applied before ``inserts`` (an atom in both is
        present afterwards).  Callers must pass *effective* deltas —
        inserted rows absent from and deleted rows present in the
        current instance — plus the constants entering/leaving the
        active domain; :mod:`repro.service.updates` computes all four
        from an ABox-level update.  After the call, answers must be
        identical to a from-scratch load of the updated instance.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release the backend's resources (idempotent)."""

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class PythonEngine(Engine):
    """The native engine: an interned, indexed in-memory database."""

    name = "python"

    def __init__(self, abox: ABox, extra_relations: ExtraRelations = None):
        # an instance decoded from the shared-memory shard transport
        # still carries its interned fact arrays: adopt the codes
        # wholesale instead of re-interning every constant
        arrays = abox.cached_fact_arrays()
        if arrays is not None:
            self.database = Database.from_arrays(arrays, extra_relations)
        else:
            self.database = Database(abox, extra_relations)

    def evaluate(self, query: NDLQuery,
                 optimize_sql: bool = False) -> EvaluationResult:
        return evaluate_on(query, self.database)

    def apply_delta(self, inserts, deletes, adom_add=(), adom_remove=()):
        self.database.delete_facts(deletes, removed_constants=adom_remove)
        self.database.insert_facts(inserts)


class SQLiteEngine(Engine):
    """The SQL backend: materialised tables or planner-driven views."""

    def __init__(self, abox: ABox, extra_relations: ExtraRelations = None,
                 materialised: bool = True):
        from ..sql.engine import SQLEngine

        self.materialised = materialised
        self.name = "sql" if materialised else "sql-views"
        self._engine = SQLEngine(abox, extra_relations)

    def evaluate(self, query: NDLQuery,
                 optimize_sql: bool = False) -> EvaluationResult:
        return self._engine.evaluate(query,
                                     materialised=self.materialised,
                                     optimize_sql=optimize_sql)

    def apply_delta(self, inserts, deletes, adom_add=(), adom_remove=()):
        self._engine.apply_delta(inserts, deletes, adom_add, adom_remove)

    def close(self) -> None:
        self._engine.close()


class DuckDBBackend(Engine):
    """The DuckDB backend: one view per IDB predicate on the columnar
    executor.  Needs the optional ``duckdb`` package."""

    name = "duckdb"

    def __init__(self, abox: ABox, extra_relations: ExtraRelations = None):
        from ..sql.engine import DuckDBEngine

        self._engine = DuckDBEngine(abox, extra_relations)

    def evaluate(self, query: NDLQuery,
                 optimize_sql: bool = False) -> EvaluationResult:
        return self._engine.evaluate(query, materialised=False,
                                     optimize_sql=optimize_sql)

    def apply_delta(self, inserts, deletes, adom_add=(), adom_remove=()):
        self._engine.apply_delta(inserts, deletes, adom_add, adom_remove)

    def close(self) -> None:
        self._engine.close()


def create_engine(name: str, abox: ABox,
                  extra_relations: ExtraRelations = None) -> Engine:
    """Load ``abox`` into the backend called ``name``.

    ``name`` is one of :data:`ENGINES`: ``"python"`` (interned hash-join
    engine), ``"sql"`` (SQLite, bottom-up materialisation),
    ``"sql-views"`` (SQLite, one view per IDB predicate) or ``"duckdb"``
    (DuckDB views; needs the optional ``duckdb`` package).
    """
    if name == "python":
        return PythonEngine(abox, extra_relations)
    if name == "sql":
        return SQLiteEngine(abox, extra_relations, materialised=True)
    if name == "sql-views":
        return SQLiteEngine(abox, extra_relations, materialised=False)
    if name == "duckdb":
        if not engine_available("duckdb"):
            raise ValueError(
                "engine 'duckdb' needs the optional 'duckdb' package "
                "(pip install duckdb)")
        return DuckDBBackend(abox, extra_relations)
    raise ValueError(f"unknown engine {name!r}; expected one of {ENGINES}")
