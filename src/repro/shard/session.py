"""``ShardedSession``: the :class:`~repro.rewriting.api.AnswerSession`
surface over a component-sharded data instance.

Scatter-gather evaluation rests on the component-locality argument
(see :mod:`repro.shard`): for a *connected* CQ the compiled plan is
broadcast unchanged to every shard and the per-shard certain answers
are unioned.  A *disconnected* CQ does not decompose that way — an
answer may combine constants from different shards — so it is split
into its connected components, each component sub-OMQ is compiled and
scattered independently, and the per-component answer sets are
recombined by cross product (components without answer variables act
as boolean filters).  Anything that resists that decomposition is
routed to a lazily-built monolithic session with a logged reason — the
documented single-shard fallback.

Incremental updates thread through :class:`~repro.shard.partition
.Partition`: deltas are routed to the owning shards, and an insertion
that merges two components triggers a rebalance (the lighter
component's atoms move to the heavier one's shard) inside the same
update round.
"""

from __future__ import annotations

import dataclasses
import itertools
import logging
import threading
import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..data.abox import ABox, GroundAtom
from ..datalog.program import NDLQuery
from ..obs import trace as _trace
from ..rewriting.api import OMQ, AnswerSession, compile_data_variant
from ..rewriting.plan import AnswerOptions, Answers, Plan, compile_omq
from ..service.updates import UpdateDelta, UpdateResult, _dedup
from .executor import create_executor
from .partition import Partition, auto_shards

log = logging.getLogger("repro.shard")


class ShardedSession:
    """Answer many OMQs over one data instance split into ``shards``.

    Drop-in for :class:`~repro.rewriting.api.AnswerSession` where it
    matters — ``compile`` / ``answer`` / ``apply_update`` /
    ``insert_facts`` / ``delete_facts`` / context manager — plus
    :meth:`execute_plan`, the scatter-gather entry point
    ``Plan.execute`` dispatches to.

    ``executor`` is ``"process"`` (persistent worker processes, true
    parallelism), ``"serial"`` (in-process reference implementation),
    ``"auto"`` (processes on multi-core machines) or comma-separated
    ``http://`` worker URLs (multi-node scatter-gather over remote
    ``repro serve`` instances).  The session owns the master ABox:
    updates mutate it in place and route deltas to the owning shards.

    ``shards`` may be ``"auto"``: the count is picked by
    :func:`~repro.shard.partition.auto_shards` from the usable CPUs
    and the component-weight skew, and re-evaluated whenever an update
    rebalances components across shards (the session reshards in
    place).  ``start_method`` and ``transport`` configure
    process-backed executors (see
    :class:`~repro.shard.executor.ProcessExecutor`).
    """

    def __init__(self, abox: ABox, shards, engine: str = "python",
                 executor: str = "auto", rewriting_cache=None,
                 start_method: Optional[str] = None,
                 transport: Optional[str] = None):
        self.abox = abox
        self.engine = engine
        self.adaptive_shards = shards == "auto"
        if self.adaptive_shards:
            shards = auto_shards(abox)
        self.shards = shards
        self.rewriting_cache = rewriting_cache
        self._executor_kind_requested = executor
        self._start_method = start_method
        self._transport = transport
        #: times the session re-partitioned itself (``shards="auto"``)
        self.reshards = 0
        self.partition = Partition.build(abox, shards)
        self._executor = create_executor(
            executor, self.partition.shard_aboxes(abox), engine,
            start_method=start_method, transport=transport)
        #: one loaded backend per shard (surface parity with
        #: ``AnswerSession.data_loads``)
        self.data_loads = shards
        self._lock = threading.RLock()
        #: set when an update partially failed: shard data may diverge
        #: from the master, so the session refuses to answer
        self._poisoned: Optional[str] = None
        #: the documented fallback path: a monolithic session built
        #: lazily for plans that do not decompose (dropped on update)
        self._fallback: Optional[AnswerSession] = None
        #: tbox fingerprint -> (tbox, completion of the master ABox);
        #: only the data-dependent compile stages need it
        self._completions: Dict[str, Tuple[object, ABox]] = {}
        #: memoised component sub-plans of disconnected-CQ plans,
        #: keyed by (plan fingerprint, concrete CQ) — the concrete CQ
        #: disambiguates renamed-but-isomorphic queries, whose
        #: fingerprints collide on purpose but whose answer-variable
        #: *names* drive the cross-product recombination
        self._sub_plans: Dict[object,
                              List[Tuple[Tuple[str, ...], Plan]]] = {}

    @property
    def executor_kind(self) -> str:
        return self._executor.kind

    # -- compilation -------------------------------------------------------

    def _master_completion(self, tbox) -> ABox:
        from ..fingerprint import tbox_fingerprint

        key = tbox_fingerprint(tbox)
        entry = self._completions.get(key)
        if entry is None:
            entry = self._completions.setdefault(
                key, (tbox, self.abox.complete(tbox)))
        return entry[1]

    def compile(self, omq: OMQ, options=None, **overrides) -> Plan:
        """Compile ``omq`` exactly as a monolithic session would.

        Compilation is data-independent for the common options and the
        plan is shared with every shard.  The data-dependent stages
        (``adaptive``, ``optimize`` pruning) consult a completion of
        the *master* ABox — global statistics, computed once per TBox;
        the resulting plan is still sound per shard (a predicate empty
        globally is empty in every shard, and an adaptively chosen
        method is a correct rewriting everywhere).
        """
        options = AnswerOptions.coerce(options, **overrides)
        data = compile_data_variant(
            options, self.abox,
            lambda: self._master_completion(omq.tbox))
        return compile_omq(omq, options, data=data,
                           cache=self.rewriting_cache)

    def answer(self, omq: OMQ, method: str = "auto",
               engine: Optional[str] = None,
               optimize_program: bool = False,
               magic: bool = False, options=None) -> Answers:
        """Certain answers to ``omq``; the ``AnswerSession.answer``
        signature over the sharded execution path."""
        options = AnswerOptions.from_legacy(options, method=method,
                                            magic=magic,
                                            optimize=optimize_program)
        plan = self.compile(omq, options)
        return self.execute_plan(plan, engine=engine, options=options)

    # -- scatter-gather execution ------------------------------------------

    def execute_plan(self, plan: Plan, engine: Optional[str] = None,
                     options: Optional[AnswerOptions] = None) -> Answers:
        """Run a compiled plan scatter-gather and merge the results.

        The same knob precedence as ``Plan.execute``: ``engine`` beats
        ``options.engine`` beats the plan's compile-time options.
        """
        effective = plan.options if options is None else options
        engine_name = engine or effective.engine or self.engine
        cq = plan.omq.query
        with self._lock:
            self._check_usable()
            started = time.perf_counter()
            with _trace.span("execute") as exec_span:
                exec_span.attrs["shards"] = self.shards
                exec_span.attrs["engine"] = engine_name
                if cq.is_connected:
                    rounds = [self._executor.execute(plan,
                                                     engine=engine_name)]
                    answers = frozenset().union(
                        *(result.answers for result in rounds[0]))
                else:
                    try:
                        sub_plans = self._component_plans(plan)
                    except Exception as error:
                        log.warning(
                            "disconnected CQ %s does not decompose (%s); "
                            "falling back to monolithic execution",
                            cq, error)
                        return self._execute_fallback(plan, engine_name,
                                                      options)
                    rounds = []
                    component_sets = []
                    for _, sub_plan in sub_plans:
                        results = self._executor.execute(
                            sub_plan, engine=engine_name)
                        rounds.append(results)
                        component_sets.append(frozenset().union(
                            *(result.answers for result in results)))
                    answers = _cross_product(
                        cq.answer_vars,
                        [vars_t for vars_t, _ in sub_plans],
                        component_sets)
                # graft each shard's worker-recorded spans in as
                # ``shard-N`` children of the open ``execute`` span
                for results in rounds:
                    for result in results:
                        _trace.record(f"shard-{result.shard}",
                                      result.seconds, result.spans)
            elapsed = time.perf_counter() - started
        return self._merge(plan, answers, rounds, elapsed, engine_name,
                           effective)

    def _component_plans(self, plan: Plan
                         ) -> List[Tuple[Tuple[str, ...], Plan]]:
        """One compiled plan per connected component of the CQ, each
        carrying the component's answer-variable tuple.

        Memoised per (plan, concrete CQ) so a disconnected plan keeps
        the compile-once/execute-many contract across repeated
        ``execute_plan`` calls; updates clear the memo (data-dependent
        sub-compilations consult the master completion).
        """
        key = (plan.fingerprint, plan.omq.query)
        memoised = self._sub_plans.get(key)
        if memoised is not None:
            return memoised
        cq = plan.omq.query
        sub_plans = []
        for component in sorted(cq.connected_components(), key=min):
            answer_vars = tuple(v for v in cq.answer_vars
                                if v in component)
            sub_cq = cq.restrict_to(component, answer_vars)
            sub_plans.append(
                (answer_vars,
                 self.compile(OMQ(plan.omq.tbox, sub_cq), plan.options)))
        self._sub_plans[key] = sub_plans
        return sub_plans

    def execute_restricted(self, plan: Plan, ndl: NDLQuery,
                           engine: Optional[str] = None,
                           shards: Optional[Sequence[int]] = None
                           ) -> Dict[int, FrozenSet[Tuple[str, ...]]]:
        """Scatter a *substituted* NDL query under ``plan``'s identity
        and return the raw per-shard answer sets (no union).

        Standing-query maintenance evaluates single disjuncts of the
        plan's rewriting this way, restricted to the shards an update
        touched (``shards=None`` hits all).  The substituted plan
        keeps the original's method/options, so each worker picks the
        same data variant (raw vs completed) the full plan would.
        Sound for broadcastable plans only — connected CQs — which is
        exactly when maintenance uses it.
        """
        engine_name = engine or self.engine
        if not getattr(self._executor, "supports_restricted", True):
            raise RuntimeError(
                f"the {self._executor.kind!r} executor cannot evaluate "
                "restricted (substituted-NDL) plans — standing-query "
                "maintenance needs a local executor "
                "('serial'/'process')")
        restricted = dataclasses.replace(plan, ndl=ndl)
        with self._lock:
            self._check_usable()
            results = self._executor.execute(restricted,
                                             engine=engine_name,
                                             shards=shards)
        return {result.shard: frozenset(result.answers)
                for result in results}

    def _execute_fallback(self, plan: Plan, engine_name: str,
                          options: Optional[AnswerOptions]) -> Answers:
        if self._fallback is None:
            log.warning("building monolithic fallback session over %r",
                        self.abox)
            self._fallback = AnswerSession(
                self.abox, engine=self.engine,
                rewriting_cache=self.rewriting_cache)
            self.data_loads += 1
        return plan.execute(self._fallback, engine=engine_name,
                            options=options)

    def _merge(self, plan: Plan, answers, rounds, elapsed: float,
               engine_name: str, effective: AnswerOptions) -> Answers:
        shard_seconds: Dict[int, float] = {}
        generated = 0
        relation_sizes: Dict[str, int] = {}
        for results in rounds:
            for result in results:
                shard_seconds[result.shard] = (
                    shard_seconds.get(result.shard, 0.0) + result.seconds)
                generated += result.generated_tuples
                for name, size in result.relation_sizes.items():
                    relation_sizes[name] = (
                        relation_sizes.get(name, 0) + size)
        timeout = effective.timeout
        return Answers(answers=answers, generated_tuples=generated,
                       relation_sizes=relation_sizes, seconds=elapsed,
                       engine=engine_name, method=plan.method,
                       plan_fingerprint=plan.fingerprint,
                       timed_out=timeout is not None and elapsed > timeout,
                       shards=self.shards,
                       shard_seconds=shard_seconds)

    # -- incremental updates -----------------------------------------------

    def apply_update(self,
                     inserts: Iterable[GroundAtom] = (),
                     deletes: Iterable[GroundAtom] = ()) -> UpdateResult:
        """Mutate the sharded data in place; deletions apply first.

        Deltas are routed to the owning shards; an insertion bridging
        two shards moves the lighter component over (see
        :meth:`Partition.route_inserts`), all inside one round, so
        every worker sees exactly the atoms a fresh partition of the
        final data would give it.
        """
        with self._lock:
            self._check_usable()
            result = UpdateResult()
            effective_deletes = [atom for atom in _dedup(deletes)
                                 if atom in self.abox]
            for predicate, args in effective_deletes:
                self.abox.discard(predicate, *args)
            shard_deletes = self.partition.route_deletes(effective_deletes)
            result.deleted = len(effective_deletes)

            effective_inserts = [atom for atom in _dedup(inserts)
                                 if atom not in self.abox]
            shard_inserts, moved = self.partition.route_inserts(
                effective_inserts, self.abox)
            for predicate, args in effective_inserts:
                self.abox.add(predicate, *args)
            result.inserted = len(effective_inserts)

            deltas: Dict[int, Tuple[List, List]] = {}
            for shard in (set(shard_deletes) | set(shard_inserts)
                          | set(moved)):
                deltas[shard] = (
                    shard_inserts.get(shard, []),
                    shard_deletes.get(shard, []) + moved.get(shard, []))
            # the delta as standing-query maintenance sees it: every
            # atom whose *shard-local* extension changed — including
            # rebalance moves, which relocate atoms of predicates the
            # global update never named — and both ends of each move.
            # Completion / adom effects happen inside the shard
            # workers, so record the sound conservative summary.
            delta_atoms = list(effective_deletes)
            moved_atoms = {atom for atoms in moved.values()
                           for atom in atoms}
            delta_atoms.extend(moved_atoms)
            delta_atoms.extend(effective_inserts)
            result.delta = UpdateDelta(
                atoms=_dedup(delta_atoms),
                deletes=bool(effective_deletes or moved_atoms),
                adom_changed=bool(delta_atoms),
                touched_shards=frozenset(deltas))
            try:
                if deltas:
                    for outcome in self._executor.apply_deltas(deltas):
                        result.completion_inserted += outcome.get(
                            "completion_inserted", 0)
                        result.completion_deleted += outcome.get(
                            "completion_deleted", 0)
                        result.backends_updated += outcome.get(
                            "backends_updated", 0)
            except Exception:
                # the master ABox and partition already hold the
                # update, but some shard may not: answering from this
                # state would be silently wrong, so refuse from now on
                self._poisoned = (
                    "an update delta failed on a shard worker; shard "
                    "data may diverge from the master")
                log.error("poisoning sharded session: %s",
                          self._poisoned)
                raise
            finally:
                # master-level caches are stale either way: the
                # fallback session's backends and the compile-time
                # completions are rebuilt lazily from the updated ABox
                if self._fallback is not None:
                    self._fallback.close()
                    self._fallback = None
                self._completions.clear()
                self._sub_plans.clear()
            if self.adaptive_shards and moved:
                # a rebalancing update changed the component layout:
                # re-evaluate the adaptive count and reshard if it
                # moved.  Old shard indexes are meaningless afterwards,
                # so the delta conservatively touches every new shard.
                wanted = auto_shards(self.abox)
                if wanted != self.shards:
                    self._reshard(wanted)
                    result.delta = dataclasses.replace(
                        result.delta,
                        touched_shards=frozenset(range(self.shards)))
            return result

    def _reshard(self, shards: int) -> None:
        """Swap in a fresh partition + executor over ``shards`` buckets
        (build first, then tear down the old executor, so a failed
        build leaves the session running at the old count)."""
        partition = Partition.build(self.abox, shards)
        executor = create_executor(
            self._executor_kind_requested,
            partition.shard_aboxes(self.abox), self.engine,
            start_method=self._start_method, transport=self._transport)
        old = self._executor
        self.partition = partition
        self._executor = executor
        self.shards = shards
        self.reshards += 1
        self.data_loads += shards
        log.info("resharded to %d shard(s) after rebalancing update",
                 shards)
        try:
            old.close()
        except Exception:
            log.exception("closing the pre-reshard executor failed")

    def _check_usable(self) -> None:
        if self._poisoned is not None:
            raise RuntimeError(
                f"sharded session is unusable: {self._poisoned}; "
                "build a fresh session over the master data")

    def insert_facts(self, atoms: Iterable[GroundAtom]) -> UpdateResult:
        """Insert ground atoms (see :meth:`apply_update`)."""
        return self.apply_update(inserts=atoms)

    def delete_facts(self, atoms: Iterable[GroundAtom]) -> UpdateResult:
        """Delete ground atoms (see :meth:`apply_update`)."""
        return self.apply_update(deletes=atoms)

    def pinned_constants(self):
        """Surface parity with ``AnswerSession`` (sharded sessions do
        not support OBDA side tables)."""
        return frozenset()

    # -- stats and lifecycle -----------------------------------------------

    def stats(self) -> Dict[str, object]:
        stats = self.partition.stats()
        stats["executor"] = self._executor.kind
        stats["facts"] = len(self.abox)
        stats["adaptive"] = self.adaptive_shards
        stats["reshards"] = self.reshards
        transport = getattr(self._executor, "transport", None)
        if transport is not None:
            stats["transport"] = transport
        return stats

    def close(self) -> None:
        with self._lock:
            self._executor.close()
            if self._fallback is not None:
                self._fallback.close()
                self._fallback = None

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardedSession({self.abox!r}, shards={self.shards}, "
                f"engine={self.engine!r}, "
                f"executor={self._executor.kind!r})")


def _cross_product(answer_vars: Tuple[str, ...],
                   var_tuples: List[Tuple[str, ...]],
                   sets: List[frozenset]) -> frozenset:
    """Recombine per-component answer sets.

    Each component binds its own answer variables; the certain answers
    of the whole CQ are all combinations, reordered to the original
    answer tuple.  A component with no answer variables contributes
    ``{()}`` (satisfied) or ``{}`` (unsatisfied, emptying the product)
    — the boolean-filter semantics.
    """
    combined = set()
    for combo in itertools.product(*sets):
        env: Dict[str, str] = {}
        for vars_t, row in zip(var_tuples, combo):
            env.update(zip(vars_t, row))
        combined.add(tuple(env[v] for v in answer_vars))
    return frozenset(combined)
