"""Scatter-gather executors over per-shard engines.

Two interchangeable implementations of one small contract — broadcast
a compiled :class:`~repro.rewriting.plan.Plan` to every shard and
gather the per-shard results, or push per-shard data deltas:

* :class:`SerialExecutor` — per-shard
  :class:`~repro.rewriting.api.AnswerSession`\\ s evaluated in-process,
  one after another.  No parallelism, no pickling; the reference
  implementation the parity tests run against.
* :class:`ProcessExecutor` — one persistent worker *process* per
  shard, each holding a loaded session over its shard, driven over
  pipes.  Evaluation is CPU-bound pure Python, so processes (not
  threads) are what buys wall-clock parallelism; workers stay alive
  across calls, so the per-shard load/completion/indexing cost is paid
  once, exactly like a monolithic session.

Workers intern TBoxes by fingerprint: sessions key completions by
object identity, and every ``execute`` delivers a freshly unpickled
plan, so without interning each call would recomplete the shard.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..data.abox import ABox, GroundAtom
from ..obs.trace import Trace, current_trace_id, tracing
from ..rewriting.api import AnswerSession

ShardDelta = Tuple[Sequence[GroundAtom], Sequence[GroundAtom]]


@dataclass(frozen=True)
class ShardResult:
    """One shard's contribution to a scatter-gather round."""

    shard: int
    answers: frozenset
    seconds: float
    generated_tuples: int = 0
    relation_sizes: Dict[str, int] = field(default_factory=dict)
    #: span payload dicts recorded inside the shard (worker-local
    #: trace), grafted into the caller's trace as ``shard-N`` children
    spans: Tuple = ()


class Executor:
    """The scatter-gather contract both implementations satisfy."""

    kind: str = "?"

    @property
    def shards(self) -> int:
        raise NotImplementedError

    def execute(self, plan, engine: Optional[str] = None,
                shards: Optional[Sequence[int]] = None
                ) -> List[ShardResult]:
        """Broadcast ``plan`` and gather per-shard results.

        ``shards`` restricts the round to a subset (standing-query
        maintenance evaluates restricted plans only on the shards an
        update touched); ``None`` means every shard.
        """
        raise NotImplementedError

    def _selected(self, shards: Optional[Sequence[int]]) -> List[int]:
        if shards is None:
            return list(range(self.shards))
        selected = sorted({shard for shard in shards
                           if 0 <= shard < self.shards})
        return selected

    def apply_deltas(self, deltas: Mapping[int, ShardDelta]
                     ) -> List[Dict[str, int]]:
        """Push per-shard ``(inserts, deletes)`` (deletes apply first);
        returns each touched shard's update-result dict."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _intern_plan_tbox(plan, tboxes: Dict[str, object]):
    """One canonical TBox object per fingerprint inside a worker, so a
    session's identity-keyed completion cache hits across calls."""
    from ..fingerprint import intern_tbox

    interned = intern_tbox(plan.omq.tbox, tboxes)
    if interned is plan.omq.tbox:
        return plan
    omq = dataclasses.replace(plan.omq, tbox=interned)
    return dataclasses.replace(plan, omq=omq)


def _shard_execute(session: AnswerSession, plan,
                   engine: Optional[str],
                   trace_id: Optional[str] = None) -> Tuple:
    started = time.perf_counter()
    if trace_id is not None:
        # record spans under a shard-local trace (the parent's trace
        # object never crosses the pickle boundary — only its ID does)
        local = Trace(trace_id)
        with tracing(local):
            result = plan.execute(session, engine=engine)
        spans = [entry.payload() for entry in local.spans]
    else:
        result = plan.execute(session, engine=engine)
        spans = []
    elapsed = time.perf_counter() - started
    return (result.answers, elapsed, result.generated_tuples,
            dict(result.relation_sizes), spans)


class SerialExecutor(Executor):
    """In-process scatter-gather: the shards evaluate one at a time."""

    kind = "serial"

    def __init__(self, shard_aboxes: Sequence[ABox],
                 engine: str = "python"):
        self._sessions = [AnswerSession(abox, engine=engine)
                          for abox in shard_aboxes]

    @property
    def shards(self) -> int:
        return len(self._sessions)

    def execute(self, plan, engine: Optional[str] = None,
                shards: Optional[Sequence[int]] = None
                ) -> List[ShardResult]:
        trace_id = current_trace_id()
        results = []
        for shard in self._selected(shards):
            answers, seconds, generated, sizes, spans = _shard_execute(
                self._sessions[shard], plan, engine, trace_id)
            results.append(ShardResult(shard, answers, seconds,
                                       generated, sizes, tuple(spans)))
        return results

    def apply_deltas(self, deltas: Mapping[int, ShardDelta]
                     ) -> List[Dict[str, int]]:
        results = []
        for shard, (inserts, deletes) in sorted(deltas.items()):
            outcome = self._sessions[shard].apply_update(
                inserts=inserts, deletes=deletes)
            results.append(outcome.as_dict())
        return results

    def close(self) -> None:
        for session in self._sessions:
            session.close()
        self._sessions = []


def _worker_main(connection, abox: ABox, engine: str) -> None:
    """The per-shard worker loop: load once, serve commands forever."""
    session = AnswerSession(abox, engine=engine)
    tboxes: Dict[str, object] = {}
    try:
        while True:
            message = connection.recv()
            command = message[0]
            if command == "stop":
                break
            try:
                if command == "execute":
                    _, plan, engine_name, trace_id = message
                    plan = _intern_plan_tbox(plan, tboxes)
                    connection.send(
                        ("ok", _shard_execute(session, plan,
                                              engine_name, trace_id)))
                elif command == "update":
                    _, inserts, deletes = message
                    outcome = session.apply_update(inserts=inserts,
                                                   deletes=deletes)
                    connection.send(("ok", outcome.as_dict()))
                elif command == "ping":
                    connection.send(("ok", "pong"))
                else:
                    connection.send(("error",
                                     f"unknown command {command!r}"))
            except Exception as error:  # report, keep serving
                connection.send(
                    ("error", f"{type(error).__name__}: {error}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        session.close()
        connection.close()


class ProcessExecutor(Executor):
    """One persistent worker process per shard, driven over pipes.

    ``execute`` scatters the (pickled) plan to every worker and blocks
    gathering the answers; the workers run truly in parallel.  A lock
    serialises scatter rounds, so the executor is safe to share across
    threads (concurrent callers queue per round, not per shard).

    Start method: ``fork`` where available (workers inherit the shard
    data for free) — but only while the parent is single-threaded;
    forking a multithreaded process (e.g. building the executor lazily
    inside an HTTP handler thread) can deadlock the child on a lock
    some other thread held at fork time, so ``forkserver``/``spawn``
    take over there (the shard ABox is then pickled to each worker
    once, at start-up).
    """

    kind = "process"

    def __init__(self, shard_aboxes: Sequence[ABox],
                 engine: str = "python",
                 start_method: Optional[str] = None):
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            if "fork" in methods and threading.active_count() == 1:
                start_method = "fork"
            elif "forkserver" in methods:
                start_method = "forkserver"
            else:
                start_method = "spawn"
        context = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._broken = False
        self._connections = []
        self._processes = []
        try:
            for abox in shard_aboxes:
                parent, child = context.Pipe()
                process = context.Process(
                    target=_worker_main, args=(child, abox, engine),
                    daemon=True, name=f"repro-shard-{len(self._processes)}")
                process.start()
                child.close()
                self._connections.append(parent)
                self._processes.append(process)
        except Exception:
            self.close()
            raise

    @property
    def shards(self) -> int:
        return len(self._processes)

    def _check_usable(self) -> None:
        if self._broken:
            raise RuntimeError(
                "a shard worker died in an earlier round; close this "
                "session and build a fresh one")

    def _scatter(self, shards: Sequence[int], messages) -> None:
        """Send one message per shard; a closed pipe marks the whole
        executor broken (a later gather would desync otherwise)."""
        for shard, message in zip(shards, messages):
            try:
                self._connections[shard].send(message)
            except (BrokenPipeError, OSError) as error:
                self._mark_gone(shard, error)

    def _broadcast(self, message) -> None:
        """Send one identical message to every shard, pickled *once*
        (``Connection.send`` would re-pickle the plan per shard)."""
        import pickle

        payload = pickle.dumps(message)
        for shard in range(self.shards):
            try:
                self._connections[shard].send_bytes(payload)
            except (BrokenPipeError, OSError) as error:
                self._mark_gone(shard, error)

    def _mark_gone(self, shard: int, error: Exception) -> None:
        self._broken = True
        raise RuntimeError(
            f"shard {shard} worker is gone ({type(error).__name__}); "
            "close this session and build a fresh one") from None

    def _gather_all(self, shards: Sequence[int]) -> List:
        """One reply per shard, *always* fully drained — a failed shard
        must not leave later replies queued to desync the next round.
        A worker that died mid-round (pipe EOF, process kill) marks
        the executor broken: its reply can never arrive, so no further
        round may be scattered."""
        payloads: List = []
        errors: List[str] = []
        for shard in shards:
            try:
                status, payload = self._connections[shard].recv()
            except (EOFError, OSError):
                self._broken = True
                errors.append(f"shard {shard}: worker died (pipe EOF)")
                continue
            if status == "ok":
                payloads.append(payload)
            else:
                errors.append(f"shard {shard}: {payload}")
        if errors:
            raise RuntimeError("shard worker(s) failed: "
                               + "; ".join(errors))
        return payloads

    def execute(self, plan, engine: Optional[str] = None,
                shards: Optional[Sequence[int]] = None
                ) -> List[ShardResult]:
        trace_id = current_trace_id()
        with self._lock:
            self._check_usable()
            if shards is None:
                selected = list(range(self.shards))
                self._broadcast(("execute", plan, engine, trace_id))
            else:
                selected = self._selected(shards)
                message = ("execute", plan, engine, trace_id)
                self._scatter(selected,
                              (message for _ in selected))
            payloads = self._gather_all(selected)
        return [ShardResult(shard, answers, seconds, generated, sizes,
                            tuple(spans))
                for shard, (answers, seconds, generated, sizes, spans)
                in zip(selected, payloads)]

    def apply_deltas(self, deltas: Mapping[int, ShardDelta]
                     ) -> List[Dict[str, int]]:
        with self._lock:
            self._check_usable()
            touched = sorted(deltas)
            self._scatter(touched,
                          (("update", list(deltas[shard][0]),
                            list(deltas[shard][1]))
                           for shard in touched))
            return self._gather_all(touched)

    def close(self) -> None:
        with self._lock:
            for connection in self._connections:
                try:
                    connection.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for process in self._processes:
                process.join(timeout=5)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1)
            for connection in self._connections:
                connection.close()
            self._connections = []
            self._processes = []


def create_executor(kind: str, shard_aboxes: Sequence[ABox],
                    engine: str = "python") -> Executor:
    """Build the requested executor; ``"auto"`` picks processes on
    multi-core machines and the serial path on single-core ones (where
    worker processes cost start-up and pickling but cannot overlap)."""
    import os

    if kind == "auto":
        kind = "process" if (os.cpu_count() or 1) > 1 else "serial"
    if kind == "serial":
        return SerialExecutor(shard_aboxes, engine=engine)
    if kind == "process":
        return ProcessExecutor(shard_aboxes, engine=engine)
    raise ValueError(f"unknown executor {kind!r}; "
                     "expected 'auto', 'serial' or 'process'")
