"""Scatter-gather executors over per-shard engines.

Three interchangeable implementations of one small contract —
broadcast a compiled :class:`~repro.rewriting.plan.Plan` to every
shard and gather the per-shard results, or push per-shard data deltas:

* :class:`SerialExecutor` — per-shard
  :class:`~repro.rewriting.api.AnswerSession`\\ s evaluated in-process,
  one after another.  No parallelism, no pickling; the reference
  implementation the parity tests run against.
* :class:`ProcessExecutor` — one persistent worker *process* per
  shard, each holding a loaded session over its shard, driven over
  pipes.  Evaluation is CPU-bound pure Python, so processes (not
  threads) are what buys wall-clock parallelism; workers stay alive
  across calls, so the per-shard load/completion/indexing cost is paid
  once, exactly like a monolithic session.  Under ``spawn`` /
  ``forkserver`` the shard data travels through the shared-memory fact
  transport (:mod:`repro.shard.transport`) instead of pickle, and
  answer sets stream back in fixed-size chunks so the parent unions
  incrementally.
* :class:`HttpExecutor` — multi-node mode: each shard's data lives as
  a dataset on a remote ``repro serve`` instance and every round
  scatter-gathers ``/answer`` requests concurrently over asyncio
  (:class:`~repro.client.AsyncClient`), with the caller's trace ID
  propagated on ``X-Repro-Trace-Id``.

Workers intern TBoxes by fingerprint: sessions key completions by
object identity, and every ``execute`` delivers a freshly unpickled
plan, so without interning each call would recomplete the shard.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..data.abox import ABox, GroundAtom
from ..obs.trace import Trace, current_trace_id, tracing
from ..rewriting.api import AnswerSession
from .transport import SharedABox, ShmDescriptor, attach_abox

ShardDelta = Tuple[Sequence[GroundAtom], Sequence[GroundAtom]]

#: Answer tuples per streamed reply chunk (see ``_worker_main``).
CHUNK_ROWS = 8192


@dataclass(frozen=True)
class ShardResult:
    """One shard's contribution to a scatter-gather round."""

    shard: int
    answers: frozenset
    seconds: float
    generated_tuples: int = 0
    relation_sizes: Dict[str, int] = field(default_factory=dict)
    #: span payload dicts recorded inside the shard (worker-local
    #: trace), grafted into the caller's trace as ``shard-N`` children
    spans: Tuple = ()


class Executor:
    """The scatter-gather contract every implementation satisfies."""

    kind: str = "?"
    #: Whether ``execute`` accepts plans whose NDL was substituted
    #: after compilation (standing-query maintenance); remote
    #: executors cannot ship a bare NDL over the wire.
    supports_restricted: bool = True

    @property
    def shards(self) -> int:
        raise NotImplementedError

    def execute(self, plan, engine: Optional[str] = None,
                shards: Optional[Sequence[int]] = None
                ) -> List[ShardResult]:
        """Broadcast ``plan`` and gather per-shard results.

        ``shards`` restricts the round to a subset (standing-query
        maintenance evaluates restricted plans only on the shards an
        update touched); ``None`` means every shard.
        """
        raise NotImplementedError

    def _selected(self, shards: Optional[Sequence[int]]) -> List[int]:
        if shards is None:
            return list(range(self.shards))
        requested = set(shards)
        invalid = sorted(s for s in requested
                         if not 0 <= s < self.shards)
        if invalid:
            # silently dropping these would skip evaluation — e.g.
            # maintenance routed to a stale shard id after a rebalance
            raise ValueError(
                f"shard index(es) {invalid} out of range for "
                f"{self.shards} shard(s)")
        return sorted(requested)

    def _check_open(self) -> None:
        if getattr(self, "_closed", False):
            raise RuntimeError(
                "executor is closed; build a fresh executor (or "
                "ShardedSession) over the data")

    def apply_deltas(self, deltas: Mapping[int, ShardDelta]
                     ) -> List[Dict[str, int]]:
        """Push per-shard ``(inserts, deletes)`` (deletes apply first);
        returns each touched shard's update-result dict."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _intern_plan_tbox(plan, tboxes: Dict[str, object]):
    """One canonical TBox object per fingerprint inside a worker, so a
    session's identity-keyed completion cache hits across calls."""
    from ..fingerprint import intern_tbox

    interned = intern_tbox(plan.omq.tbox, tboxes)
    if interned is plan.omq.tbox:
        return plan
    omq = dataclasses.replace(plan.omq, tbox=interned)
    return dataclasses.replace(plan, omq=omq)


def _shard_execute(session: AnswerSession, plan,
                   engine: Optional[str],
                   trace_id: Optional[str] = None) -> Tuple:
    started = time.perf_counter()
    if trace_id is not None:
        # record spans under a shard-local trace (the parent's trace
        # object never crosses the pickle boundary — only its ID does)
        local = Trace(trace_id)
        with tracing(local):
            result = plan.execute(session, engine=engine)
        spans = [entry.payload() for entry in local.spans]
    else:
        result = plan.execute(session, engine=engine)
        spans = []
    elapsed = time.perf_counter() - started
    return (result.answers, elapsed, result.generated_tuples,
            dict(result.relation_sizes), spans)


class SerialExecutor(Executor):
    """In-process scatter-gather: the shards evaluate one at a time."""

    kind = "serial"

    def __init__(self, shard_aboxes: Sequence[ABox],
                 engine: str = "python"):
        self._closed = False
        self._sessions = [AnswerSession(abox, engine=engine)
                          for abox in shard_aboxes]

    @property
    def shards(self) -> int:
        return len(self._sessions)

    def execute(self, plan, engine: Optional[str] = None,
                shards: Optional[Sequence[int]] = None
                ) -> List[ShardResult]:
        self._check_open()
        trace_id = current_trace_id()
        results = []
        for shard in self._selected(shards):
            answers, seconds, generated, sizes, spans = _shard_execute(
                self._sessions[shard], plan, engine, trace_id)
            results.append(ShardResult(shard, answers, seconds,
                                       generated, sizes, tuple(spans)))
        return results

    def apply_deltas(self, deltas: Mapping[int, ShardDelta]
                     ) -> List[Dict[str, int]]:
        self._check_open()
        self._selected(sorted(deltas))
        results = []
        for shard, (inserts, deletes) in sorted(deltas.items()):
            outcome = self._sessions[shard].apply_update(
                inserts=inserts, deletes=deletes)
            results.append(outcome.as_dict())
        return results

    def close(self) -> None:
        self._closed = True
        for session in self._sessions:
            session.close()
        self._sessions = []


def _worker_main(connection, payload, engine: str) -> None:
    """The per-shard worker loop: load once, serve commands forever.

    ``payload`` is either the shard ABox itself (``pickle`` transport,
    or inherited memory under ``fork``) or a
    :class:`~repro.shard.transport.ShmDescriptor` pointing at the
    shared-memory fact arrays to attach and decode.

    ``execute`` replies stream: zero or more ``("chunk", rows)``
    messages followed by one terminal ``("ok", (count, seconds,
    generated, sizes, spans))`` — or a single ``("error", text)``.
    """
    try:
        if isinstance(payload, ShmDescriptor):
            abox = attach_abox(payload)
        else:
            abox = payload
        session = AnswerSession(abox, engine=engine)
    except Exception as error:
        try:
            connection.send(("error", "worker start-up failed: "
                             f"{type(error).__name__}: {error}"))
        finally:
            connection.close()
        return
    tboxes: Dict[str, object] = {}
    try:
        while True:
            message = connection.recv()
            command = message[0]
            if command == "stop":
                break
            try:
                if command == "execute":
                    _, plan, engine_name, trace_id = message
                    plan = _intern_plan_tbox(plan, tboxes)
                    answers, seconds, generated, sizes, spans = \
                        _shard_execute(session, plan, engine_name,
                                       trace_id)
                    rows = tuple(answers)
                    for start in range(0, len(rows), CHUNK_ROWS):
                        connection.send(
                            ("chunk", rows[start:start + CHUNK_ROWS]))
                    connection.send(("ok", (len(rows), seconds,
                                            generated, sizes, spans)))
                elif command == "update":
                    _, inserts, deletes = message
                    outcome = session.apply_update(inserts=inserts,
                                                   deletes=deletes)
                    connection.send(("ok", outcome.as_dict()))
                elif command == "ping":
                    connection.send(("ok", "pong"))
                else:
                    connection.send(("error",
                                     f"unknown command {command!r}"))
            except Exception as error:  # report, keep serving
                connection.send(
                    ("error", f"{type(error).__name__}: {error}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        session.close()
        connection.close()


class ProcessExecutor(Executor):
    """One persistent worker process per shard, driven over pipes.

    ``execute`` scatters the (pickled) plan to every worker and blocks
    gathering the answers; the workers run truly in parallel.  Answer
    sets stream back in :data:`CHUNK_ROWS`-sized chunks, so the parent
    unions incrementally instead of materialising one pickled
    frozenset per shard.  A lock serialises scatter rounds, so the
    executor is safe to share across threads (concurrent callers queue
    per round, not per shard).

    Start method: ``fork`` where available (workers inherit the shard
    data for free) — but only while the parent is single-threaded;
    forking a multithreaded process (e.g. building the executor lazily
    inside an HTTP handler thread) can deadlock the child on a lock
    some other thread held at fork time, so ``forkserver``/``spawn``
    take over there.

    Transport: under ``forkserver``/``spawn`` the shard ABoxes default
    to the shared-memory fact transport (``transport="shm"``) — each
    shard is encoded once into a segment, the worker attaches and
    decodes interned arrays, and once every worker confirmed its
    attach the segments are unlinked.  ``transport="pickle"`` forces
    the legacy path (under ``fork`` it is free: the arguments are
    inherited, not pickled).
    """

    kind = "process"

    def __init__(self, shard_aboxes: Sequence[ABox],
                 engine: str = "python",
                 start_method: Optional[str] = None,
                 transport: Optional[str] = None):
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            if "fork" in methods and threading.active_count() == 1:
                start_method = "fork"
            elif "forkserver" in methods:
                start_method = "forkserver"
            else:
                start_method = "spawn"
        if transport is None:
            transport = "pickle" if start_method == "fork" else "shm"
        if transport not in ("shm", "pickle"):
            raise ValueError(f"unknown transport {transport!r}; "
                             "expected 'shm' or 'pickle'")
        self.start_method = start_method
        self.transport = transport
        context = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._broken = False
        self._closed = False
        self._connections = []
        self._processes = []
        self._segments: List[SharedABox] = []
        try:
            for abox in shard_aboxes:
                parent, child = context.Pipe()
                if transport == "shm":
                    shared = SharedABox(abox)
                    self._segments.append(shared)
                    payload: object = shared.descriptor
                else:
                    payload = abox
                process = context.Process(
                    target=_worker_main, args=(child, payload, engine),
                    daemon=True, name=f"repro-shard-{len(self._processes)}")
                process.start()
                child.close()
                self._connections.append(parent)
                self._processes.append(process)
            if self._segments:
                # barrier: a segment may only be unlinked once its
                # worker confirmed the attach + decode
                self._confirm_startup()
                for segment in self._segments:
                    segment.close()
                self._segments = []
        except Exception:
            self.close()
            raise

    def _confirm_startup(self) -> None:
        for shard, connection in enumerate(self._connections):
            try:
                connection.send(("ping",))
                status, payload = connection.recv()
            except (BrokenPipeError, EOFError, OSError):
                detail = ""
                try:  # a start-up error report may still be buffered
                    _, payload = connection.recv()
                    detail = f": {payload}"
                except Exception:
                    pass
                raise RuntimeError(f"shard {shard} worker died during "
                                   f"start-up{detail}") from None
            if status != "ok":
                raise RuntimeError(
                    f"shard {shard} worker failed to start: {payload}")

    @property
    def shards(self) -> int:
        return len(self._processes)

    def _check_usable(self) -> None:
        self._check_open()
        if self._broken:
            raise RuntimeError(
                "a shard worker died in an earlier round; close this "
                "session and build a fresh one")

    def _scatter(self, shards: Sequence[int], messages) -> None:
        """Send one message per shard; a closed pipe marks the whole
        executor broken (a later gather would desync otherwise)."""
        for shard, message in zip(shards, messages):
            try:
                self._connections[shard].send(message)
            except (BrokenPipeError, OSError) as error:
                self._mark_gone(shard, error)

    def _broadcast(self, message) -> None:
        """Send one identical message to every shard, pickled *once*
        (``Connection.send`` would re-pickle the plan per shard)."""
        import pickle

        payload = pickle.dumps(message)
        for shard in range(self.shards):
            try:
                self._connections[shard].send_bytes(payload)
            except (BrokenPipeError, OSError) as error:
                self._mark_gone(shard, error)

    def _mark_gone(self, shard: int, error: Exception) -> None:
        self._broken = True
        raise RuntimeError(
            f"shard {shard} worker is gone ({type(error).__name__}); "
            "close this session and build a fresh one") from None

    def _gather_all(self, shards: Sequence[int]) -> List:
        """One reply per shard, *always* fully drained — a failed shard
        must not leave later replies queued to desync the next round.
        A worker that died mid-round (pipe EOF, process kill) marks
        the executor broken: its reply can never arrive, so no further
        round may be scattered."""
        payloads: List = []
        errors: List[str] = []
        for shard in shards:
            try:
                status, payload = self._connections[shard].recv()
            except (EOFError, OSError):
                self._broken = True
                errors.append(f"shard {shard}: worker died (pipe EOF)")
                continue
            if status == "ok":
                payloads.append(payload)
            else:
                errors.append(f"shard {shard}: {payload}")
        if errors:
            raise RuntimeError("shard worker(s) failed: "
                               + "; ".join(errors))
        return payloads

    def _gather_execute(self, shards: Sequence[int]) -> List[Tuple]:
        """Drain one streamed ``execute`` reply per shard: chunks are
        unioned incrementally until the terminal ``ok``/``error``; the
        full-drain and breakage semantics of :meth:`_gather_all`."""
        payloads: List[Tuple] = []
        errors: List[str] = []
        for shard in shards:
            rows: List[tuple] = []
            while True:
                try:
                    status, payload = self._connections[shard].recv()
                except (EOFError, OSError):
                    self._broken = True
                    errors.append(f"shard {shard}: worker died "
                                  "(pipe EOF)")
                    break
                if status == "chunk":
                    rows.extend(payload)
                    continue
                if status == "ok":
                    count, seconds, generated, sizes, spans = payload
                    if count != len(rows):
                        self._broken = True
                        errors.append(
                            f"shard {shard}: gather desync "
                            f"({len(rows)} rows, {count} announced)")
                    else:
                        payloads.append((frozenset(rows), seconds,
                                         generated, sizes, spans))
                else:
                    errors.append(f"shard {shard}: {payload}")
                break
        if errors:
            raise RuntimeError("shard worker(s) failed: "
                               + "; ".join(errors))
        return payloads

    def execute(self, plan, engine: Optional[str] = None,
                shards: Optional[Sequence[int]] = None
                ) -> List[ShardResult]:
        trace_id = current_trace_id()
        with self._lock:
            self._check_usable()
            if shards is None:
                selected = list(range(self.shards))
                self._broadcast(("execute", plan, engine, trace_id))
            else:
                selected = self._selected(shards)
                message = ("execute", plan, engine, trace_id)
                self._scatter(selected,
                              (message for _ in selected))
            payloads = self._gather_execute(selected)
        return [ShardResult(shard, answers, seconds, generated, sizes,
                            tuple(spans))
                for shard, (answers, seconds, generated, sizes, spans)
                in zip(selected, payloads)]

    def apply_deltas(self, deltas: Mapping[int, ShardDelta]
                     ) -> List[Dict[str, int]]:
        with self._lock:
            self._check_usable()
            touched = self._selected(sorted(deltas))
            self._scatter(touched,
                          (("update", list(deltas[shard][0]),
                            list(deltas[shard][1]))
                           for shard in touched))
            return self._gather_all(touched)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            for connection in self._connections:
                try:
                    connection.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for process in self._processes:
                process.join(timeout=5)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1)
                if process.is_alive():
                    # terminate() can be masked by a SIGTERM handler
                    # or a blocked signal; SIGKILL cannot — escalate
                    # rather than leak the worker
                    process.kill()
                    process.join(timeout=1)
            for connection in self._connections:
                connection.close()
            self._connections = []
            self._processes = []
            for segment in self._segments:
                segment.close()
            self._segments = []


class HttpExecutor(Executor):
    """Multi-node scatter-gather over remote ``repro serve`` workers.

    Each shard's ABox is registered as a private dataset on one of the
    worker ``urls`` (round-robin), and every ``execute`` round sends
    the plan's OMQ + options for the worker to compile and evaluate
    monolithically over its shard — plans travel as canonical text,
    so the workers' rewriting caches turn recompilation into a
    fingerprint lookup after the first round.  Requests fan out
    concurrently on asyncio streams (:class:`~repro.client
    .AsyncClient`) and the caller's ambient trace ID rides along on
    ``X-Repro-Trace-Id``, so worker-side slow-query logs correlate
    with the front node's request.

    Restricted (substituted-NDL) plans cannot travel this way —
    :attr:`supports_restricted` is ``False`` and
    :meth:`~repro.shard.session.ShardedSession.execute_restricted`
    rejects them with a clear error, so standing-query maintenance
    needs a local executor.

    ``close`` drops the per-shard datasets from the workers (best
    effort: an unreachable worker does not fail the close).
    """

    kind = "http"
    supports_restricted = False

    def __init__(self, shard_aboxes: Sequence[ABox],
                 engine: str = "python",
                 urls: Sequence[str] = (),
                 timeout: float = 60.0):
        import uuid

        from ..client import Client

        cleaned = [url.strip().rstrip("/") for url in urls if url.strip()]
        if not cleaned:
            raise ValueError("HttpExecutor needs at least one worker URL")
        for url in cleaned:
            if not url.startswith("http://"):
                raise ValueError(
                    f"HttpExecutor speaks plain http, got {url!r}")
        self._engine = engine
        self._timeout = timeout
        self._closed = False
        self._shards = len(shard_aboxes)
        prefix = f"__shard__{uuid.uuid4().hex[:12]}"
        #: shard -> (worker base URL, dataset name on that worker)
        self._homes: List[Tuple[str, str]] = []
        self._clients: Dict[str, Client] = {
            url: Client.connect(url, timeout=timeout) for url in cleaned}
        for shard, abox in enumerate(shard_aboxes):
            url = cleaned[shard % len(cleaned)]
            name = f"{prefix}-{shard}"
            self._clients[url].register_dataset(name, abox)
            self._homes.append((url, name))

    @property
    def shards(self) -> int:
        return self._shards

    def execute(self, plan, engine: Optional[str] = None,
                shards: Optional[Sequence[int]] = None
                ) -> List[ShardResult]:
        import asyncio

        self._check_open()
        selected = self._selected(shards)
        engine_name = engine or self._engine
        # each worker evaluates its shard monolithically; knobs that
        # only steer the front node's orchestration are stripped
        options = plan.options.replace(engine=engine_name, shards=0,
                                       start_method=None)
        results = asyncio.run(
            self._fan_out(selected, plan.omq, options))
        return [ShardResult(shard, answers.answers, answers.seconds,
                            answers.generated_tuples)
                for shard, answers in zip(selected, results)]

    async def _fan_out(self, selected: Sequence[int], omq, options):
        import asyncio

        from ..client import AsyncClient

        clients = {url: AsyncClient.connect(url, timeout=self._timeout)
                   for url in {self._homes[shard][0]
                               for shard in selected}}
        return await asyncio.gather(
            *(clients[self._homes[shard][0]].answer(
                self._homes[shard][1], omq, options)
              for shard in selected))

    def apply_deltas(self, deltas: Mapping[int, ShardDelta]
                     ) -> List[Dict[str, int]]:
        self._check_open()
        touched = self._selected(sorted(deltas))
        results = []
        for shard in touched:
            url, name = self._homes[shard]
            inserts, deletes = deltas[shard]
            results.append(self._clients[url].update(
                name, inserts=inserts, deletes=deletes))
        return results

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for url, name in self._homes:
            try:
                self._clients[url].unregister_dataset(name)
            except Exception:
                pass  # worker gone or dataset already dropped
        for client in self._clients.values():
            client.close()
        self._clients = {}
        self._homes = []


def create_executor(kind: str, shard_aboxes: Sequence[ABox],
                    engine: str = "python",
                    start_method: Optional[str] = None,
                    transport: Optional[str] = None) -> Executor:
    """Build the requested executor.

    ``"auto"`` picks processes on multi-core machines and the serial
    path on single-core ones (where worker processes cost start-up but
    cannot overlap).  A ``kind`` of comma-separated ``http://`` URLs
    builds the multi-node :class:`HttpExecutor` over those worker
    servers.  ``start_method`` and ``transport`` configure the
    :class:`ProcessExecutor` (ignored by the other kinds).
    """
    import os

    if kind.startswith(("http://", "https://")):
        return HttpExecutor(shard_aboxes, engine=engine,
                            urls=kind.split(","))
    if kind == "auto":
        kind = "process" if (os.cpu_count() or 1) > 1 else "serial"
    if kind == "serial":
        return SerialExecutor(shard_aboxes, engine=engine)
    if kind == "process":
        return ProcessExecutor(shard_aboxes, engine=engine,
                               start_method=start_method,
                               transport=transport)
    raise ValueError(f"unknown executor {kind!r}; expected 'auto', "
                     "'serial', 'process' or comma-separated "
                     "http:// worker URLs")
