"""Component-respecting ABox partitioning.

The data-side mirror of the paper's locality argument: a homomorphic
image of a *connected* CQ lies inside one connected component of the
data's Gaifman graph, and the OWL 2 QL completion never connects two
components (every entailed atom mentions only individuals of one base
atom).  A partition whose shards are unions of whole components
therefore preserves certain answers shard-by-shard.

:class:`Partition` tracks components with a union-find over the
individuals and packs them into ``K`` balanced buckets greedily by
atom weight (largest component first onto the lightest shard, with a
hash-stable tie-break), the classical LPT heuristic.  Incremental
updates keep the invariant:

* an insertion whose atom bridges two shards *merges* their components
  — the lighter component's atoms move to the heavier one's shard;
* a deletion may split a component, but the pieces stay co-located, so
  the union-find is kept as a conservative over-approximation (never
  split); shards still respect (the refined) components.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..data.abox import ABox, GroundAtom

RowsByShard = Dict[int, List[GroundAtom]]


def _stable_hash(constant: str) -> int:
    """A process-independent hash (``hash(str)`` is salted per run)."""
    return int.from_bytes(
        hashlib.blake2b(constant.encode(), digest_size=8).digest(), "big")


def component_weights(abox: ABox) -> List[int]:
    """Atom weights of ``abox``'s Gaifman components, descending."""
    partition = Partition.build(abox, 1)
    by_root: Dict[str, int] = {}
    for _, args in abox.atoms():
        root = partition._find(args[0])
        by_root[root] = by_root.get(root, 0) + 1
    return sorted(by_root.values(), reverse=True)


def available_cpus() -> int:
    """CPUs actually usable by this process: the scheduler affinity
    mask where the platform exposes it, else ``os.cpu_count()``."""
    import os

    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _lpt_imbalance(weights: List[int], shards: int) -> float:
    """Imbalance ratio (max shard load over the ideal ``total/K``) of
    packing ``weights`` (descending) onto ``shards`` buckets by LPT —
    the same heuristic :meth:`Partition.build` uses, so the prediction
    matches what the real partition would do."""
    total = sum(weights)
    if not total:
        return 1.0
    loads = [0] * shards
    for weight in weights:
        loads[loads.index(min(loads))] += weight
    return max(loads) / (total / shards)


def auto_shards(abox: ABox, available: Optional[int] = None,
                max_imbalance: float = 1.5,
                min_shard_weight: int = 256) -> int:
    """Pick a shard count for ``abox`` from live CPUs and skew.

    The candidate ceiling is the smallest of the usable CPUs
    (``available``, defaulting to :func:`available_cpus`), the number
    of Gaifman components (more shards than components can only sit
    idle) and ``total_atoms // min_shard_weight`` (tiny shards pay
    scatter-gather overhead for no win).  From the ceiling downward,
    the first ``K`` whose predicted LPT imbalance stays within
    ``max_imbalance`` wins — a dominating giant component defeats any
    split, in which case the answer is ``1`` (monolithic).
    """
    weights = component_weights(abox)
    if available is None:
        available = available_cpus()
    total = sum(weights)
    ceiling = min(available, len(weights),
                  max(1, total // min_shard_weight))
    for shards in range(ceiling, 1, -1):
        if _lpt_imbalance(weights, shards) <= max_imbalance:
            return shards
    return 1


class Partition:
    """An assignment of Gaifman components to ``shards`` buckets.

    The partition owns no data: it maps constants to shards and routes
    atom-level deltas; the master ABox stays with the caller
    (:class:`~repro.shard.session.ShardedSession`) and per-shard copies
    live inside the executor workers.
    """

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        #: union-find parent pointers over the individuals.
        self._parent: Dict[str, str] = {}
        #: root -> every constant of the component (merged on union).
        self._members: Dict[str, Set[str]] = {}
        #: root -> shard index.
        self._owner: Dict[str, int] = {}
        #: atoms currently routed to each shard (balance bookkeeping).
        self.weights: List[int] = [0] * shards

    # -- union-find --------------------------------------------------------

    def _find(self, constant: str) -> str:
        parent = self._parent
        root = constant
        while parent[root] != root:
            root = parent[root]
        while parent[constant] != root:  # path compression
            parent[constant], constant = root, parent[constant]
        return root

    def _add_constant(self, constant: str) -> str:
        if constant not in self._parent:
            self._parent[constant] = constant
            self._members[constant] = {constant}
        return self._find(constant)

    def _union(self, first: str, second: str) -> str:
        """Merge two components; returns the surviving root.

        The larger member set absorbs the smaller (union by size), and
        the surviving root keeps its shard assignment when it has one.
        """
        root_a, root_b = self._find(first), self._find(second)
        if root_a == root_b:
            return root_a
        if len(self._members[root_a]) < len(self._members[root_b]):
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._members[root_a].update(self._members.pop(root_b))
        absorbed = self._owner.pop(root_b, None)
        if root_a not in self._owner and absorbed is not None:
            self._owner[root_a] = absorbed
        return root_a

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, abox: ABox, shards: int) -> "Partition":
        """Partition ``abox``'s components into ``shards`` buckets."""
        partition = cls(shards)
        weights: Dict[str, int] = {}
        for _, args in abox.atoms():
            root = partition._add_constant(args[0])
            for constant in args[1:]:
                partition._add_constant(constant)
                root = partition._union(args[0], constant)
            weights[root] = weights.get(root, 0) + 1
        # re-key the per-root weights (roots may have been merged away)
        by_root: Dict[str, int] = {}
        for constant, weight in weights.items():
            root = partition._find(constant)
            by_root[root] = by_root.get(root, 0) + weight
        # LPT packing: heaviest component first onto the lightest
        # shard; the blake2b tie-break keeps the order independent of
        # dict iteration and of Python's per-process hash salt
        ordered = sorted(by_root,
                         key=lambda root: (-by_root[root],
                                           _stable_hash(root)))
        for root in ordered:
            shard = partition._lightest_shard()
            partition._owner[root] = shard
            partition.weights[shard] += by_root[root]
        return partition

    def _lightest_shard(self) -> int:
        return min(range(self.shards), key=lambda i: self.weights[i])

    # -- lookups -----------------------------------------------------------

    def owner_of(self, constant: str) -> Optional[int]:
        """The shard holding ``constant``'s component (None if unseen)."""
        if constant not in self._parent:
            return None
        return self._owner.get(self._find(constant))

    def _atom_shard(self, atom: GroundAtom) -> int:
        """The owning shard of an atom already covered by the mapping
        (both constants of a binary atom share a component)."""
        owner = self.owner_of(atom[1][0])
        if owner is None:
            raise KeyError(f"constant {atom[1][0]!r} has no shard")
        return owner

    def shard_aboxes(self, abox: ABox) -> List[ABox]:
        """Fresh per-shard ABoxes routing every atom of ``abox``."""
        shards = [ABox() for _ in range(self.shards)]
        for predicate, args in abox.atoms():
            shards[self._atom_shard((predicate, args))].add(predicate, *args)
        return shards

    def component_count(self) -> int:
        return len(self._owner)

    def stats(self) -> Dict[str, object]:
        return {"shards": self.shards,
                "components": self.component_count(),
                "weights": list(self.weights)}

    # -- incremental routing ----------------------------------------------

    def route_deletes(self, atoms: Iterable[GroundAtom]) -> RowsByShard:
        """Route effective deletions to their owning shards.

        Components are never split (a conservative over-approximation:
        the pieces of a split component stay co-located, which still
        respects the refined components); weights are decremented.
        """
        routed: RowsByShard = {}
        for atom in atoms:
            shard = self._atom_shard(atom)
            routed.setdefault(shard, []).append(atom)
            self.weights[shard] -= 1
        return routed

    def route_inserts(self, atoms: Iterable[GroundAtom], master: ABox,
                      ) -> Tuple[RowsByShard, RowsByShard]:
        """Route effective insertions, merging components as needed.

        ``master`` is the data *before* these insertions (deletions of
        the same update already applied).  Two phases, so that every
        atom — including one processed before a later merge of the same
        round — lands on its *final* shard: first all insertions are
        unioned into the component structure and each merged component
        group is assigned one destination (the shard of its heaviest
        pre-round member, new-only components opening on the lightest
        shard); then the pre-round components that changed shard have
        their master atoms rehomed and the new atoms are routed to the
        final owners.  Returns ``(inserts, deletes)`` by shard — the
        deletes are the moved-out atoms; a caller applying both
        (deletes first) keeps every shard equal to a fresh routing of
        the final data.
        """
        atoms = [(predicate, tuple(args)) for predicate, args in atoms]
        inserts: RowsByShard = {}
        deletes: RowsByShard = {}
        # phase 1a: union everything, snapshotting *move candidates*
        # only — the sides of a union whose group spans two owners.  A
        # same-owner union inside an untouched component costs O(1);
        # once a group is cross-owner its surviving root is marked
        # ``tainted``, and every owned side merging into a tainted
        # group is snapshotted too, so no member of a rehomed group is
        # ever missed (even when an unowned new root survives a union)
        snapshots: Dict[str, Tuple[int, Set[str]]] = {}
        tainted: Set[str] = set()
        for _, args in atoms:
            for constant in args:
                self._add_constant(constant)
            for constant in args[1:]:
                root_a = self._find(args[0])
                root_b = self._find(constant)
                if root_a == root_b:
                    continue
                owner_a = self._owner.get(root_a)
                owner_b = self._owner.get(root_b)
                if ((owner_a is not None and owner_b is not None
                        and owner_a != owner_b)
                        or root_a in tainted or root_b in tainted):
                    for root, owner in ((root_a, owner_a),
                                        (root_b, owner_b)):
                        if owner is not None and root not in snapshots:
                            snapshots[root] = (
                                owner, set(self._members[root]))
                    tainted.add(self._union(args[0], constant))
                else:
                    self._union(args[0], constant)
        # phase 1b: one destination per group and balanced weights.
        # Cross-owner groups go to the shard of their heaviest
        # snapshotted side; groups with an inherited owner stay; truly
        # new components open on the lightest shard — heaviest first
        # (LPT), with weights updated *as assigned* so a bulk insert of
        # many new components spreads instead of piling on one shard
        grouped: Dict[str, List[str]] = {}
        for old_root in snapshots:
            grouped.setdefault(self._find(old_root), []).append(old_root)
        atom_roots = [self._find(args[0]) for _, args in atoms]
        counts: Dict[str, int] = {}
        for root in atom_roots:
            counts[root] = counts.get(root, 0) + 1
        for final_root in sorted(counts, key=lambda r: (-counts[r],
                                                        _stable_hash(r))):
            merged = grouped.get(final_root)
            if merged:
                merged.sort(key=lambda r: (-len(snapshots[r][1]),
                                           _stable_hash(r)))
                self._owner[final_root] = snapshots[merged[0]][0]
            elif final_root not in self._owner:
                self._owner[final_root] = self._lightest_shard()
            self.weights[self._owner[final_root]] += counts[final_root]
        # phase 2a: rehome the snapshotted sides that changed shard.
        # setdefault guards against overlapping snapshots (an owner
        # propagated through a union can put the same constants into
        # two entries); all moves share ONE scan of master
        moves: Dict[str, Tuple[int, int]] = {}
        for old_root, (source, members) in snapshots.items():
            destination = self._owner[self._find(old_root)]
            if source != destination:
                for constant in members:
                    moves.setdefault(constant, (source, destination))
        if moves:
            self._rehome(moves, master, inserts, deletes)
        # phase 2b: route the new atoms to their final owners (their
        # weight contribution was booked in phase 1b)
        for (predicate, args), root in zip(atoms, atom_roots):
            shard = self._owner[root]
            inserts.setdefault(shard, []).append((predicate, args))
        return inserts, deletes

    def _rehome(self, moves: Dict[str, Tuple[int, int]], master: ABox,
                inserts: RowsByShard, deletes: RowsByShard) -> None:
        """Rehome every master atom of the moving constants (recorded
        as delete + insert pairs) in a single pass over the data —
        several components merging in one round still cost one scan."""
        for predicate in master.unary_predicates:
            for constant in master.unary(predicate):
                route = moves.get(constant)
                if route is not None:
                    self._record_move((predicate, (constant,)), route,
                                      inserts, deletes)
        for predicate in master.binary_predicates:
            for pair in master.binary(predicate):
                # both endpoints share a component, so args[0] decides
                route = moves.get(pair[0])
                if route is not None:
                    self._record_move((predicate, pair), route,
                                      inserts, deletes)

    def _record_move(self, atom: GroundAtom, route: Tuple[int, int],
                     inserts: RowsByShard, deletes: RowsByShard) -> None:
        source, destination = route
        deletes.setdefault(source, []).append(atom)
        inserts.setdefault(destination, []).append(atom)
        self.weights[source] -= 1
        self.weights[destination] += 1

    def __repr__(self) -> str:
        return (f"Partition({self.shards} shards, "
                f"{self.component_count()} components, "
                f"weights={self.weights})")
