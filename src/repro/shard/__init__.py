"""repro.shard: component-based data sharding with a parallel
scatter-gather plan executor.

Architecture, in one paragraph: a homomorphic image of a *connected*
CQ lies inside one connected component of the data's Gaifman graph,
and the OWL 2 QL completion never bridges components (every entailed
atom mentions only individuals of a single base atom) — so when shards
are unions of whole components, the certain answers of a connected OMQ
over the instance are exactly the union of its certain answers per
shard.  :class:`~repro.shard.partition.Partition` computes the
components with a union-find and packs them into ``K`` balanced
buckets (largest-first onto the lightest shard, hash-stable
tie-breaks); an :mod:`executor <repro.shard.executor>` holds one
loaded per-shard engine per shard — persistent worker *processes* for
real parallelism, or an in-process serial reference — and broadcasts
frozen :class:`~repro.rewriting.plan.Plan` objects scatter-gather;
:class:`~repro.shard.session.ShardedSession` fronts it with the
``AnswerSession`` surface, unioning per-shard
:class:`~repro.rewriting.plan.Answers` with merged timings and
per-shard provenance.  Disconnected CQs are split into component
sub-OMQs recombined by cross product, and anything that resists the
decomposition is routed to a monolithic fallback session with a
logged reason.  Incremental updates route deltas to the owning
shards; an insertion that merges two components rebalances (the
lighter component's atoms move to the heavier one's shard), while a
deletion that splits a component leaves the pieces co-located — a
conservative refinement that still respects components.
"""

from .executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ShardResult,
    create_executor,
)
from .partition import Partition
from .session import ShardedSession

__all__ = [
    "Executor",
    "Partition",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardResult",
    "ShardedSession",
    "create_executor",
]
