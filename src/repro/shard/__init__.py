"""repro.shard: component-based data sharding with a parallel
scatter-gather plan executor.

Architecture, in one paragraph: a homomorphic image of a *connected*
CQ lies inside one connected component of the data's Gaifman graph,
and the OWL 2 QL completion never bridges components (every entailed
atom mentions only individuals of a single base atom) — so when shards
are unions of whole components, the certain answers of a connected OMQ
over the instance are exactly the union of its certain answers per
shard.  :class:`~repro.shard.partition.Partition` computes the
components with a union-find and packs them into ``K`` balanced
buckets (largest-first onto the lightest shard, hash-stable
tie-breaks); an :mod:`executor <repro.shard.executor>` holds one
loaded per-shard engine per shard — persistent worker *processes* for
real parallelism, or an in-process serial reference — and broadcasts
frozen :class:`~repro.rewriting.plan.Plan` objects scatter-gather;
:class:`~repro.shard.session.ShardedSession` fronts it with the
``AnswerSession`` surface, unioning per-shard
:class:`~repro.rewriting.plan.Answers` with merged timings and
per-shard provenance.  Disconnected CQs are split into component
sub-OMQs recombined by cross product, and anything that resists the
decomposition is routed to a monolithic fallback session with a
logged reason.  Incremental updates route deltas to the owning
shards; an insertion that merges two components rebalances (the
lighter component's atoms move to the heavier one's shard), while a
deletion that splits a component leaves the pieces co-located — a
conservative refinement that still respects components.

Constant factors are engineered down at three points.  Worker
start-up under ``spawn``/``forkserver`` ships each shard through the
shared-memory fact transport (:mod:`repro.shard.transport`): one
``multiprocessing.shared_memory`` segment of interned fact arrays per
shard, attached and decoded by the worker with no per-atom pickling,
and adopted wholesale by the engine layer
(:meth:`~repro.engine.database.Database.from_arrays`).  The gather
side streams answer tuples back in fixed-size chunks, so the parent
unions incrementally instead of unpickling one monolithic frozenset
per shard.  And ``shards="auto"`` sizes the partition from the live
CPU count and the component-weight skew
(:func:`~repro.shard.partition.auto_shards`), resharding in place
when a rebalancing update changes the layout.  Beyond one machine,
:class:`~repro.shard.executor.HttpExecutor` runs the same
scatter-gather contract over remote ``repro serve`` instances as
shard workers (asyncio fan-out, trace-ID propagation), selected by
passing comma-separated ``http://`` URLs as the executor kind.
"""

from .executor import (
    Executor,
    HttpExecutor,
    ProcessExecutor,
    SerialExecutor,
    ShardResult,
    create_executor,
)
from .partition import Partition, auto_shards
from .session import ShardedSession

__all__ = [
    "Executor",
    "HttpExecutor",
    "Partition",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardResult",
    "ShardedSession",
    "auto_shards",
    "create_executor",
]
