"""Shared-memory ABox transport for shard-worker start-up.

Under the ``spawn``/``forkserver`` start methods every worker process
used to receive its full shard ABox by pickle — per-atom tuples
serialised, shipped down a pipe and deserialised, dominating start-up
for large shards.  This module replaces that with one contiguous
``multiprocessing.shared_memory`` segment per shard holding the
shard's interned fact arrays (a names table plus per-predicate
``array('I')`` code rows, see :class:`~repro.data.abox.FactArrays`).
Only a tiny :class:`ShmDescriptor` crosses the process boundary; the
worker attaches, decodes the arrays straight out of the mapped buffer
and rebuilds its ABox and (via
:meth:`~repro.engine.database.Database.from_arrays`) its database
without re-interning a single constant.

The byte layout is machine-local (native endianness and ``array('I')``
item size) — the segment never leaves the host, so portability would
buy nothing.  Layout::

    magic 'RFA1' | u32 name count
    u32[name count] utf-8 byte lengths | the utf-8 name bytes
    u32 relation count
    per relation: u32 name length, u32 arity, u32 rows
                  | name bytes | rows*arity codes ('I')
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass
from typing import List, Optional

from ..data.abox import ABox, FactArrays

_MAGIC = b"RFA1"
_HEADER = struct.Struct("<4sI")    # magic, name count
_COUNT = struct.Struct("<I")       # relation count
_RELATION = struct.Struct("<III")  # name length, arity, row count


def encode_fact_arrays(arrays: FactArrays) -> bytes:
    """Serialise :class:`FactArrays` to one contiguous buffer."""
    encoded_names = [name.encode("utf-8") for name in arrays.names]
    parts: List[bytes] = [_HEADER.pack(_MAGIC, len(encoded_names)),
                          array("I", map(len, encoded_names)).tobytes()]
    parts.extend(encoded_names)
    relations = (
        [(name, 1, codes) for name, codes in sorted(arrays.unary.items())]
        + [(name, 2, codes) for name, codes in sorted(arrays.binary.items())])
    parts.append(_COUNT.pack(len(relations)))
    for name, arity, codes in relations:
        raw = name.encode("utf-8")
        parts.append(_RELATION.pack(len(raw), arity, len(codes) // arity))
        parts.append(raw)
        parts.append(codes.tobytes())
    return b"".join(parts)


def decode_fact_arrays(buffer) -> FactArrays:
    """Deserialise a buffer written by :func:`encode_fact_arrays`.

    Accepts any object with the buffer protocol (``bytes`` or a
    ``memoryview`` over a shared-memory segment); the code arrays are
    bulk-loaded with ``array.frombytes`` — no per-atom unpickling.
    """
    view = memoryview(buffer)
    magic, name_count = _HEADER.unpack_from(view, 0)
    if magic != _MAGIC:
        raise ValueError("not a fact-array buffer (bad magic)")
    offset = _HEADER.size
    lengths = array("I")
    size = name_count * lengths.itemsize
    lengths.frombytes(view[offset:offset + size])
    offset += size
    names: List[str] = []
    for length in lengths:
        names.append(bytes(view[offset:offset + length]).decode("utf-8"))
        offset += length
    arrays = FactArrays(names)
    (relation_count,) = _COUNT.unpack_from(view, offset)
    offset += _COUNT.size
    for _ in range(relation_count):
        name_length, arity, rows = _RELATION.unpack_from(view, offset)
        offset += _RELATION.size
        name = bytes(view[offset:offset + name_length]).decode("utf-8")
        offset += name_length
        codes = array("I")
        size = rows * arity * codes.itemsize
        codes.frombytes(view[offset:offset + size])
        offset += size
        (arrays.unary if arity == 1 else arrays.binary)[name] = codes
    return arrays


@dataclass(frozen=True)
class ShmDescriptor:
    """The picklable pointer that crosses the process boundary instead
    of the ABox: a shared-memory segment name plus payload length."""

    name: str
    size: int


class SharedABox:
    """Parent-side handle on one shard ABox published in shared memory.

    The parent keeps the handle until every worker confirmed its
    attach, then :meth:`close` drops the mapping *and unlinks* the
    segment — attached workers keep their mappings alive (POSIX shm
    semantics), so nothing leaks even if the parent dies afterwards.
    """

    def __init__(self, abox: ABox):
        from multiprocessing import shared_memory

        payload = encode_fact_arrays(abox.to_fact_arrays())
        # SharedMemory rejects size=0, hence the max(1, ...)
        self._segment: Optional[shared_memory.SharedMemory] = \
            shared_memory.SharedMemory(create=True,
                                       size=max(1, len(payload)))
        self._segment.buf[:len(payload)] = payload
        self.descriptor = ShmDescriptor(self._segment.name, len(payload))

    def close(self) -> None:
        """Drop the parent mapping and unlink the segment (idempotent)."""
        if self._segment is None:
            return
        segment, self._segment = self._segment, None
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


def attach_abox(descriptor: ShmDescriptor) -> ABox:
    """Worker side: attach to a published segment and decode the ABox.

    Attaching registers the name with the multiprocessing resource
    tracker again — but spawned/forked workers share the *parent's*
    tracker process (its fd travels in the spawn preparation data), so
    the duplicate registration is a set no-op there and the parent's
    unlink after the start-up barrier balances the books.  Explicitly
    unregistering here would instead cancel the parent's registration
    in that shared tracker.  The segment's byte lifetime is safe either
    way: every attached mapping keeps the data alive after the unlink
    (POSIX shm semantics).
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=descriptor.name)
    try:
        view = memoryview(segment.buf)
        try:
            arrays = decode_fact_arrays(view[:descriptor.size])
        finally:
            view.release()
        return ABox.from_fact_arrays(arrays)
    finally:
        segment.close()
