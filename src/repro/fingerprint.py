"""Canonical fingerprints of TBoxes, CQs and OMQs.

One fingerprint code path shared by every layer that needs identity up
to renaming: :meth:`repro.rewriting.api.OMQ.fingerprint`, the
:class:`~repro.service.cache.RewritingCache` keys and
:class:`~repro.rewriting.plan.Plan` fingerprints all resolve here.

Two OMQs that differ only by a bijective renaming of query variables
(answer tuple order preserved) fingerprint identically, and the cached
NDL program of one answers the other — NDL evaluation returns constant
tuples positioned by the answer tuple, which renaming does not move.
Distinct queries can never collide: the encoding contains the full
atom set.
"""

from __future__ import annotations

import hashlib
import threading
from itertools import permutations, product
from math import factorial
from typing import Dict, Iterable, List, Tuple
from weakref import WeakKeyDictionary

from .queries.cq import CQ

#: Ceiling on the candidate variable orderings tried while
#: canonicalising a CQ.  Queries whose existential variables form
#: larger symmetric groups fall back to a name-dependent (still
#: deterministic and collision-free) ordering: isomorphic variants may
#: then miss each other in the cache, but never alias distinct queries.
PERMUTATION_LIMIT = 720

_tbox_fingerprints: "WeakKeyDictionary" = WeakKeyDictionary()
_tbox_lock = threading.Lock()


def tbox_fingerprint(tbox) -> str:
    """A digest of the ontology's user axioms (order-insensitive)."""
    with _tbox_lock:
        cached = _tbox_fingerprints.get(tbox)
        if cached is None:
            text = "\n".join(sorted(str(axiom)
                                    for axiom in tbox.user_axioms))
            cached = hashlib.sha256(text.encode()).hexdigest()
            _tbox_fingerprints[tbox] = cached
        return cached


def intern_tbox(tbox, registry: Dict[str, object]):
    """One canonical TBox object per fingerprint, via ``registry``.

    Sessions key completions by object identity, so equal-but-distinct
    TBox objects (re-parsed per HTTP request, unpickled per shard
    worker call) must collapse to one representative or every request
    would pay completion again.  The caller owns the registry (and any
    locking around it).
    """
    return registry.setdefault(tbox_fingerprint(tbox), tbox)


def _signature(cq: CQ, var: str, answer_codes: Dict[str, int]) -> Tuple:
    """A renaming-invariant local description of ``var``.

    Two variables with different signatures cannot be exchanged by any
    isomorphism fixing the answer tuple, so signatures both order the
    canonical search and prune its permutation space.
    """
    items: List[Tuple] = []
    for atom in cq.atoms:
        if var not in atom.args:
            continue
        description = tuple(
            ("a", answer_codes[arg]) if arg in answer_codes
            else ("self",) if arg == var else ("e",)
            for arg in atom.args)
        items.append((atom.predicate, description))
    return tuple(sorted(items))


def _encode(cq: CQ, codes: Dict[str, int]) -> Tuple:
    atoms = tuple(sorted(
        (atom.predicate, tuple(codes[arg] for arg in atom.args))
        for atom in cq.atoms))
    return (tuple(codes[v] for v in cq.answer_vars), atoms)


_cq_fingerprints: "WeakKeyDictionary" = WeakKeyDictionary()
_cq_lock = threading.Lock()


def cq_fingerprint(cq: CQ) -> Tuple:
    """A canonical encoding of ``cq`` up to variable renaming.

    Answer variables are pinned in answer-tuple order; existential
    variables are assigned the remaining codes by the lexicographically
    smallest resulting encoding (searched within signature classes,
    capped by :data:`PERMUTATION_LIMIT`).  Equal fingerprints imply the
    queries are isomorphic — the encoding contains the full atom set,
    so distinct queries can never collide.

    Memoised per CQ object (the canonical search is the expensive
    part, and a serving request fingerprints the same CQ more than
    once: the cache-hit probe, then the key of the cache lookup).
    """
    with _cq_lock:
        cached = _cq_fingerprints.get(cq)
    if cached is not None:
        return cached
    fingerprint = _cq_fingerprint(cq)
    with _cq_lock:
        _cq_fingerprints[cq] = fingerprint
    return fingerprint


def _cq_fingerprint(cq: CQ) -> Tuple:
    answer_codes: Dict[str, int] = {}
    for var in cq.answer_vars:
        answer_codes.setdefault(var, len(answer_codes))
    evars = sorted(v for v in cq.variables if v not in answer_codes)
    if not evars:
        return _encode(cq, answer_codes)
    groups: Dict[Tuple, List[str]] = {}
    for var in evars:
        groups.setdefault(_signature(cq, var, answer_codes),
                          []).append(var)
    ordered_groups = [groups[s] for s in sorted(groups)]
    candidates = 1
    for group in ordered_groups:
        candidates *= factorial(len(group))
    base = len(answer_codes)

    def encode_order(order: Iterable[str]) -> Tuple:
        codes = dict(answer_codes)
        for offset, var in enumerate(order):
            codes[var] = base + offset
        return _encode(cq, codes)

    if candidates > PERMUTATION_LIMIT:
        return encode_order(v for group in ordered_groups
                            for v in sorted(group))
    best = None
    for combo in product(*(permutations(g) for g in ordered_groups)):
        encoded = encode_order(v for group in combo for v in group)
        if best is None or encoded < best:
            best = encoded
    return best


def omq_fingerprint(omq) -> str:
    """A stable hex digest of an OMQ, canonical up to variable renaming.

    The digest combines :func:`tbox_fingerprint` and
    :func:`cq_fingerprint`; isomorphic OMQs (same ontology, renamed
    query variables) share it, distinct OMQs never do.
    """
    text = f"{tbox_fingerprint(omq.tbox)}\n{cq_fingerprint(omq.query)!r}"
    return hashlib.sha256(text.encode()).hexdigest()
