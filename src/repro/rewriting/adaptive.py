"""Cost-based ('adaptable') rewriting — the Section 6 proposal.

The paper's conclusion observes that its three optimal rewriters differ
only in *where they split* the query, that "none of the three splitting
strategies systematically outperforms the others" (Appendix D.4), and
proposes to "first define a 'cost function' on some set of alternative
rewritings that roughly estimates their evaluation time and then
construct a rewriting minimising this function", using "statistical
information about the relational tables" like a DBMS planner.

This module implements exactly that loop:

* :class:`DataStatistics` — per-predicate cardinalities and per-column
  distinct counts harvested from a data instance;
* :func:`estimate_cost` — a System-R style cost model for an NDL query:
  IDB cardinalities are estimated bottom-up, clause joins are costed
  with the same greedy fanout heuristic the engine itself uses;
* :func:`adaptive_rewrite` — produce the candidate rewritings (Lin,
  Log, Tw, Tw*, optionally data-optimised variants), cost each, return
  the cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..data.abox import ABox
from ..datalog.evaluate import EvaluationResult, evaluate
from ..datalog.optimize import optimize
from ..datalog.program import ADOM, Clause, Literal, NDLQuery
from .api import OMQ, rewrite

#: Candidate methods tried by default (the three optimal splitting
#: strategies of Section 3 plus the Appendix D.4 inlined Tw variant).
DEFAULT_CANDIDATES = ("lin", "log", "tw", "tw_star")


@dataclass(frozen=True)
class PredicateStatistics:
    """Cardinality and per-column distinct counts of one relation."""

    size: int
    distinct: Tuple[int, ...]

    def key_count(self, positions: Sequence[int]) -> int:
        """Estimated number of distinct keys over the given columns
        (independence assumption, capped by the relation size)."""
        if not positions:
            return 1
        product = 1
        for position in positions:
            if position < len(self.distinct):
                product *= max(self.distinct[position], 1)
        return max(1, min(self.size, product))


class DataStatistics:
    """Relation statistics of a data instance, as a query planner
    would keep them."""

    def __init__(self, predicates: Mapping[str, PredicateStatistics],
                 domain_size: int):
        self._predicates = dict(predicates)
        self.domain_size = max(domain_size, 1)

    @classmethod
    def from_abox(cls, abox: ABox) -> "DataStatistics":
        predicates: Dict[str, PredicateStatistics] = {}
        for name in abox.unary_predicates:
            rows = abox.unary(name)
            predicates[name] = PredicateStatistics(len(rows), (len(rows),))
        for name in abox.binary_predicates:
            rows = abox.binary(name)
            firsts = len({a for a, _ in rows})
            seconds = len({b for _, b in rows})
            predicates[name] = PredicateStatistics(
                len(rows), (firsts, seconds))
        domain = len(abox.individuals)
        predicates[ADOM] = PredicateStatistics(domain, (domain,))
        return cls(predicates, domain)

    def predicate(self, name: str) -> PredicateStatistics:
        """Statistics of an EDB predicate (empty when absent)."""
        return self._predicates.get(name, PredicateStatistics(0, (0,)))

    def __contains__(self, name: str) -> bool:
        return name in self._predicates


def _estimate_clause(clause: Clause, stats: Dict[str, PredicateStatistics],
                     domain: int) -> Tuple[float, float]:
    """``(cost, output)`` estimates for one clause.

    Mirrors the engine's greedy join: equalities are folded into a
    renaming first (exactly as the engine does), atoms are joined in
    ascending estimated fanout, the cost is the sum of the intermediate
    cardinalities and the output the final one (capped by the head's
    value space).
    """
    from ..datalog.evaluate import _equality_mapping

    mapping = _equality_mapping(clause)
    clause = Clause(clause.head.rename(mapping),
                    tuple(atom.rename(mapping)
                          for atom in clause.body_literals))
    remaining = list(clause.body_literals)
    bound: set = set()
    rows = 1.0
    cost = 0.0
    while remaining:

        def fanout(atom: Literal) -> float:
            info = stats.get(atom.predicate, PredicateStatistics(0, ()))
            if info.size == 0:
                return 0.0
            positions = [i for i, arg in enumerate(atom.args)
                         if arg in bound]
            if not positions:
                return float(info.size) * domain  # cross product penalty
            return info.size / info.key_count(positions)

        atom = min(remaining, key=fanout)
        remaining.remove(atom)
        info = stats.get(atom.predicate, PredicateStatistics(0, ()))
        if info.size == 0:
            return (cost, 0.0)
        positions = [i for i, arg in enumerate(atom.args) if arg in bound]
        if positions:
            rows *= info.size / info.key_count(positions)
        else:
            rows *= info.size
        bound |= set(atom.args)
        cost += rows
    head_cap = float(domain) ** len(set(clause.head.args))
    return (cost, min(rows, head_cap))


def estimate_cost(query: NDLQuery, statistics: DataStatistics) -> float:
    """A rough evaluation-time estimate for materialising ``query``.

    IDB cardinalities are estimated bottom-up in dependence order; the
    returned cost is the total of all intermediate join cardinalities —
    a proxy for both time and the "generated tuples" the paper reports.
    """
    program = query.program.restrict_to(query.goal)
    order = program.topological_order()
    assert order is not None
    stats: Dict[str, PredicateStatistics] = {
        name: statistics.predicate(name)
        for name in program.edb_predicates}
    stats[ADOM] = statistics.predicate(ADOM)
    domain = statistics.domain_size
    total = 0.0
    for predicate in order:
        size = 0.0
        for clause in program.clauses_for(predicate):
            clause_cost, clause_out = _estimate_clause(clause, stats, domain)
            total += clause_cost
            size += clause_out
        arity = _head_arity(program, predicate)
        size = min(size, float(domain) ** max(arity, 1))
        distinct = tuple(min(int(size) + 1, domain) for _ in range(arity))
        stats[predicate] = PredicateStatistics(int(size), distinct)
    return total


def _head_arity(program, predicate: str) -> int:
    for clause in program.clauses_for(predicate):
        return len(clause.head.args)
    return 0


@dataclass
class AdaptiveChoice:
    """The outcome of :func:`adaptive_rewrite`.

    ``method``/``query`` are the winning candidate; ``costs`` holds the
    estimate for every candidate that was applicable (methods whose
    preconditions fail — e.g. Lin on a non-tree CQ — are skipped and
    recorded in ``skipped``).
    """

    method: str
    query: NDLQuery
    cost: float
    costs: Dict[str, float] = field(default_factory=dict)
    skipped: Dict[str, str] = field(default_factory=dict)


def adaptive_rewrite(omq: OMQ, data: ABox | DataStatistics,
                     candidates: Iterable[str] = DEFAULT_CANDIDATES,
                     optimize_programs: bool = True,
                     over: str = "complete") -> AdaptiveChoice:
    """Pick the cheapest rewriting for the given data distribution.

    ``data`` may be an ABox (statistics are computed from it — use the
    *completed* ABox the query will actually run on) or precomputed
    :class:`DataStatistics`.  With ``optimize_programs`` each candidate
    is also passed through the Appendix D.4 optimiser before costing,
    so the choice reflects what would really be executed.
    """
    if isinstance(data, DataStatistics):
        statistics = data
        abox = None
    else:
        statistics = DataStatistics.from_abox(data)
        abox = data
    best: Optional[AdaptiveChoice] = None
    costs: Dict[str, float] = {}
    skipped: Dict[str, str] = {}
    for method in candidates:
        try:
            candidate = rewrite(omq, method=method, over=over)
        except ValueError as error:
            skipped[method] = str(error)
            continue
        if optimize_programs:
            candidate = optimize(candidate, abox)
        cost = estimate_cost(candidate, statistics)
        costs[method] = cost
        if best is None or cost < best.cost:
            best = AdaptiveChoice(method, candidate, cost)
    if best is None:
        raise ValueError(
            f"no candidate rewriter applies to {omq.omq_class()}: "
            f"{skipped}")
    best.costs = costs
    best.skipped = skipped
    return best


def answer_adaptive(omq: OMQ, abox: ABox,
                    candidates: Iterable[str] = DEFAULT_CANDIDATES
                    ) -> EvaluationResult:
    """End-to-end adaptive OBDA: complete the data, choose the cheapest
    rewriting for it, evaluate."""
    completed = abox.complete(omq.tbox)
    choice = adaptive_rewrite(omq, completed, candidates=candidates)
    return evaluate(choice.query, completed)
