"""Types (partial maps from variables to generating words) and their
compatibility conditions, shared by the Log (Section 3.2) and Lin
(Section 3.3) rewriters.

A type ``w`` records how variables are mapped into the canonical model:
``w(z) = eps`` means ``z`` goes to an individual constant, and
``w(z) = word`` that it goes to a labelled null ``a . word``.  The
``At`` atoms (a)-(c) of Section 3.2 translate a type into NDL body
atoms over the data.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from ..datalog.program import Equality, Literal
from ..ontology.depth import EPSILON, Word, successor_graph
from ..ontology.terms import Atomic, Exists
from ..queries.cq import CQ, Atom, Variable

#: A type: a mapping from (some) variables to words of ``W_T``.
Type = Dict[Variable, Word]


def enumerate_words(tbox, max_length: int) -> List[Word]:
    """All words of ``W_T`` of length at most ``max_length`` plus ``eps``."""
    words: List[Word] = [EPSILON]
    graph = successor_graph(tbox)
    stack: List[Word] = [(role,) for role in graph]
    while stack:
        word = stack.pop()
        words.append(word)
        if len(word) < max_length:
            stack.extend(word + (succ,) for succ in graph[word[-1]])
    return words


def candidate_words(tbox, query: CQ, var: Variable,
                    words: Sequence[Word]) -> List[Word]:
    """The words usable as ``w(var)``: the *local* compatibility
    conditions of Sections 3.2-3.3 that mention only ``var``."""
    if var in query.answer_vars:
        return [EPSILON]
    result: List[Word] = []
    for word in words:
        if word:
            last = word[-1]
            if not all(tbox.entails_concept(Exists(last.inverse()),
                                            Atomic(atom.predicate))
                       for atom in query.unary_atoms(var)):
                continue
            if any(not tbox.is_reflexive(_as_role(tbox, atom.predicate))
                   for atom in query.loop_atoms(var)):
                continue
        result.append(word)
    return result


def _as_role(tbox, predicate: str):
    from ..ontology.terms import Role

    return Role(predicate)


def pair_compatible(tbox, atom: Atom, first_word: Word,
                    second_word: Word) -> bool:
    """Condition for a binary atom ``P(y, z)`` given ``w(y)`` and ``w(z)``
    (the three-way disjunction of Sections 3.2-3.3):

    (i) both ``eps``; (ii) equal words with ``T |= P(x, x)``;
    (iii) one word extends the other by a letter entailing ``P`` in the
    appropriate direction.
    """
    from ..ontology.terms import Role

    role = Role(atom.predicate)
    if first_word == EPSILON and second_word == EPSILON:
        return True
    if first_word == second_word and tbox.is_reflexive(role):
        return True
    if (len(second_word) == len(first_word) + 1
            and second_word[:-1] == first_word):
        # h(z) = h(y) . rho with T |= rho <= P
        return tbox.entails_role(second_word[-1], role)
    if (len(first_word) == len(second_word) + 1
            and first_word[:-1] == second_word):
        # h(y) = h(z) . rho- with T |= rho <= P, i.e. last letter <= P-
        return tbox.entails_role(first_word[-1], role.inverse())
    return False


def type_compatible_with_atoms(tbox, atoms: Iterable[Atom],
                               assignment: Type) -> bool:
    """Joint (binary-atom) compatibility of a type over a set of atoms
    whose variables all lie in ``dom(assignment)``."""
    for atom in atoms:
        if atom.is_binary:
            first, second = atom.args
            if not pair_compatible(tbox, atom, assignment[first],
                                   assignment[second]):
                return False
    return True


def at_atoms(tbox, atoms: Iterable[Atom], assignment: Type) -> List[object]:
    """The conjunction ``At^w`` of Section 3.2 for the given query atoms.

    (a) data atoms for all-``eps`` atoms, (b) equalities gluing the
    anchors of binary atoms with a non-``eps`` end, (c) surrogate atoms
    ``A_rho(z)`` asserting the existence of the witness ``z . rho ...``.
    """
    from ..ontology.tbox import surrogate_name

    body: List[object] = []
    for atom in atoms:
        if atom.is_unary:
            var = atom.args[0]
            if assignment[var] == EPSILON:
                body.append(Literal(atom.predicate, (var,)))
        else:
            first, second = atom.args
            if (assignment[first] == EPSILON
                    and assignment[second] == EPSILON):
                body.append(Literal(atom.predicate, (first, second)))
            elif first != second:
                body.append(Equality(first, second))
    for var in sorted(assignment):
        word = assignment[var]
        if word != EPSILON:
            body.append(Literal(surrogate_name(word[0]), (var,)))
    return _dedupe(body)


def _dedupe(body: List[object]) -> List[object]:
    seen = []
    for atom in body:
        if atom not in seen:
            seen.append(atom)
    return seen


def product_types(variables: Sequence[Variable],
                  candidates: Dict[Variable, List[Word]]) -> Iterator[Type]:
    """All total types over ``variables`` drawn from per-variable
    candidate words."""
    pools = [candidates[var] for var in variables]
    for combo in itertools.product(*pools):
        yield dict(zip(variables, combo))


def type_key(assignment: Type) -> Tuple:
    """A canonical hashable key for a type (used for predicate naming)."""
    return tuple(sorted(assignment.items()))
