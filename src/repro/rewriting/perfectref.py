"""PerfectRef-style UCQ rewriting over *arbitrary* data instances
(Calvanese et al. 2007; our stand-in for the Clipper engine, whose
OWL 2 QL output behaves like a UCQ-style rewriting).

The classic saturation: repeatedly (i) rewrite an atom backwards
through an applicable axiom and (ii) *reduce* by unifying two atoms,
until no new CQ appears.  Reducing may identify two answer variables,
which is recorded in the CQ's head (yielding clauses like
``G(x, x) <- ...``).  Exponential on the paper's query sequences, as
Figure 2 shows for the UCQ-based engines.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..datalog.program import Clause, Literal, NDLQuery, Program
from ..ontology.terms import Atomic, Exists, Role, Top
from ..queries.cq import Atom, CQ

#: The saturation state: the CQ's atoms plus its head argument tuple
#: (answer variables, possibly with repetitions after reductions).
State = Tuple[Tuple[Atom, ...], Tuple[str, ...]]


def perfectref_rewrite(tbox, query: CQ, max_cqs: int = 100000) -> NDLQuery:
    """The PerfectRef UCQ rewriting of ``(T, q)`` over arbitrary data,
    returned as an NDL program with one clause per CQ."""
    if any(tbox.is_reflexive(role) for role in tbox.roles):
        raise ValueError(
            "PerfectRef supports the reflexivity-free fragment only "
            "(as the original algorithm for DL-Lite_R)")
    initial = _canonical(tuple(query.atoms), tuple(query.answer_vars))
    seen: Set[State] = {initial}
    frontier: List[State] = [initial]
    while frontier:
        state = frontier.pop()
        for produced in _one_step(tbox, state):
            canonical = _canonical(*produced)
            if canonical not in seen:
                seen.add(canonical)
                if len(seen) > max_cqs:
                    raise RuntimeError(
                        f"PerfectRef exceeded the CQ budget ({max_cqs}) - "
                        "exponential blow-up")
                frontier.append(canonical)
    clauses = []
    for atoms, head in sorted(seen):
        clauses.append(Clause(Literal("G", head), tuple(
            Literal(atom.predicate, atom.args) for atom in atoms)))
    return NDLQuery(Program(clauses), "G", tuple(query.answer_vars))


def _one_step(tbox, state: State) -> Iterator[State]:
    yield from _atom_rewritings(tbox, state)
    yield from _reductions(tbox, state)


def _is_unbound(state: State, var: str) -> bool:
    """A variable is unbound if it is existential and occurs just once."""
    atoms, head = state
    if var in head:
        return False
    occurrences = sum(atom.args.count(var) for atom in atoms)
    return occurrences == 1


def _atom_rewritings(tbox, state: State) -> Iterator[State]:
    """Backward application of the TBox axioms to a single atom."""
    atoms, head = state
    fresh = itertools.count()
    for index, atom in enumerate(atoms):
        rest = atoms[:index] + atoms[index + 1:]
        if atom.is_unary:
            target: object = Atomic(atom.predicate)
            anchor = atom.args[0]
        else:
            first, second = atom.args
            role = Role(atom.predicate)
            # role-inclusion steps are always applicable
            for sub in tbox.role_subs(role):
                if sub == role:
                    continue
                replacement = (Atom(sub.name, (first, second))
                               if not sub.inverted
                               else Atom(sub.name, (second, first)))
                yield rest + (replacement,), head
            if _is_unbound(state, second):
                target, anchor = Exists(role), first
            elif _is_unbound(state, first):
                target, anchor = Exists(role.inverse()), second
            else:
                continue
        for concept in sorted(tbox.concept_subs(target), key=str):
            if concept == target or isinstance(concept, Top):
                continue
            if isinstance(concept, Atomic):
                yield rest + (Atom(concept.name, (anchor,)),), head
            else:
                witness = f"_u{next(fresh)}"
                role = concept.role
                replacement = (Atom(role.name, (anchor, witness))
                               if not role.inverted
                               else Atom(role.name, (witness, anchor)))
                yield rest + (replacement,), head


def _reductions(tbox, state: State) -> Iterator[State]:
    """The *reduce* step: unify two atoms with the same predicate.

    Unifying two answer variables is allowed and reflected in the head
    tuple (the resulting disjunct only yields answers with the two
    coordinates equal)."""
    atoms, head = state
    for i in range(len(atoms)):
        for j in range(i + 1, len(atoms)):
            first, second = atoms[i], atoms[j]
            if first.predicate != second.predicate:
                continue
            if len(first.args) != len(second.args):
                continue
            unifier = _mgu(first.args, second.args, head)
            if unifier is None:
                continue
            merged = tuple(
                Atom(atom.predicate,
                     tuple(unifier.get(arg, arg) for arg in atom.args))
                for k, atom in enumerate(atoms) if k != j)
            new_head = tuple(unifier.get(arg, arg) for arg in head)
            yield merged, new_head


def _mgu(first_args, second_args, head) -> Optional[Dict[str, str]]:
    mapping: Dict[str, str] = {}
    answer_vars = set(head)

    def resolve(var: str) -> str:
        while var in mapping:
            var = mapping[var]
        return var

    for left, right in zip(first_args, second_args):
        left, right = resolve(left), resolve(right)
        if left == right:
            continue
        if left in answer_vars and right in answer_vars:
            # identify two answer variables (kept in the head tuple)
            low, high = sorted((left, right))
            mapping[high] = low
        elif left in answer_vars:
            mapping[right] = left
        else:
            mapping[left] = right
    return {var: resolve(var) for var in mapping}


def _canonical(atoms: Tuple[Atom, ...], head: Tuple[str, ...]) -> State:
    """A canonical renaming of existential variables (for duplicate
    detection across isomorphic CQs)."""
    unique = tuple(dict.fromkeys(sorted(atoms)))
    mapping: Dict[str, str] = {}
    counter = itertools.count()
    answer_vars = set(head)
    renamed: List[Atom] = []
    for atom in unique:
        args = []
        for arg in atom.args:
            if arg in answer_vars:
                args.append(arg)
            else:
                if arg not in mapping:
                    mapping[arg] = f"_e{next(counter)}"
                args.append(mapping[arg])
        renamed.append(Atom(atom.predicate, tuple(args)))
    return tuple(dict.fromkeys(sorted(renamed))), head
