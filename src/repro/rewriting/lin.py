"""The Lin rewriter (Section 3.3): linear NDL-rewritings for
``OMQ(d, 1, l)`` — bounded-depth ontologies with bounded-leaf
tree-shaped CQs — evaluable in NL (Theorem 12).

The tree-shaped CQ is rooted and cut into *slices* ``z^0, ..., z^M`` by
distance from the root; one predicate ``G^w_n`` per slice ``n`` and
type ``w`` threads the slices in a linear chain.  Only *productive*
types (those that can be extended to a full match, cf. the "dead ends"
discussion of Appendix A.6.3) get predicates, keeping the program at
most ``|q| * |T|^(2 d l)`` large.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from ..datalog.program import Clause, Literal, NDLQuery, Program
from ..datalog.transform import linear_star_transform
from ..ontology.depth import chase_depth
from ..queries.cq import CQ, Atom, Variable
from .types import (
    Type,
    at_atoms,
    candidate_words,
    enumerate_words,
    pair_compatible,
    type_key,
)


def lin_rewrite(tbox, query: CQ, root: Optional[Variable] = None,
                over: str = "complete") -> NDLQuery:
    """The linear NDL-rewriting of ``(T, q)`` of Theorem 12.

    Parameters
    ----------
    root:
        the variable to root the tree at (defaults to an answer variable
        when one exists).
    over:
        ``"complete"`` for a rewriting over complete data instances,
        ``"arbitrary"`` to compose with the Lemma 3 transformation.
    """
    if not query.is_tree_shaped:
        raise ValueError("the Lin rewriter needs a tree-shaped CQ")
    if not query.is_connected:
        raise ValueError("the Lin rewriter needs a connected CQ")
    depth = chase_depth(tbox)
    if depth is math.inf:
        raise ValueError(
            "the Lin rewriter needs an ontology of finite depth")
    if root is None:
        root = (query.answer_vars[0] if query.answer_vars
                else min(query.variables))

    slices = _slices(query, root)
    words = enumerate_words(tbox, int(depth))
    candidates: Dict[Variable, List] = {
        var: candidate_words(tbox, query, var, words)
        for var in query.variables}

    # answer variables occurring in q_n (the atoms at distance >= n)
    answer_per_slice = _answer_vars_per_slice(query, slices)

    local_types: List[List[Type]] = [
        _local_types(tbox, query, slice_vars, candidates)
        for slice_vars in slices]

    last = len(slices) - 1
    # backward pass: keep types that can be extended down to slice M
    productive: List[Dict[Tuple, Type]] = [dict() for _ in slices]
    for assignment in local_types[last]:
        productive[last][type_key(assignment)] = assignment
    for n in range(last - 1, -1, -1):
        for assignment in local_types[n]:
            if any(_pair_ok(tbox, query, slices[n], slices[n + 1],
                            assignment, succ)
                   for succ in productive[n + 1].values()):
                productive[n][type_key(assignment)] = assignment
    # forward pass: keep types reachable from slice 0 (prunes the
    # "dead ends" of Appendix A.6.3 in the other direction)
    for n in range(1, last + 1):
        reachable = {
            key: assignment
            for key, assignment in productive[n].items()
            if any(_pair_ok(tbox, query, slices[n - 1], slices[n],
                            prev, assignment)
                   for prev in productive[n - 1].values())}
        productive[n] = reachable

    clauses: List[Clause] = []
    names: Dict[Tuple[int, Tuple], str] = {}

    def predicate(n: int, assignment: Type) -> Literal:
        key = (n, type_key(assignment))
        if key not in names:
            names[key] = f"G{n}_{len(names)}"
        existential = tuple(sorted(set(slices[n]) - set(query.answer_vars)))
        return Literal(names[key], existential + answer_per_slice[n])

    for n in range(last):
        crossing = _atoms_touching(query, slices[n], slices[n + 1])
        for current in productive[n].values():
            for succ in productive[n + 1].values():
                if not _pair_ok(tbox, query, slices[n], slices[n + 1],
                                current, succ):
                    continue
                union = dict(current)
                union.update(succ)
                body = at_atoms(tbox, crossing, union)
                body.append(predicate(n + 1, succ))
                clauses.append(Clause(predicate(n, current), tuple(body)))
    final_atoms = _atoms_touching(query, slices[last], slices[last])
    for assignment in productive[last].values():
        body = at_atoms(tbox, final_atoms, assignment)
        clauses.append(Clause(predicate(last, assignment), tuple(body)))

    goal = Literal("G", tuple(query.answer_vars))
    for assignment in productive[0].values():
        clauses.append(Clause(goal, (predicate(0, assignment),)))

    result = NDLQuery(Program(clauses), "G", tuple(query.answer_vars))
    if over == "arbitrary":
        result = linear_star_transform(result, tbox)
    return result


def _slices(query: CQ, root: Variable) -> List[Tuple[Variable, ...]]:
    """``z^0, ..., z^M``: variables grouped by distance from the root."""
    distances = query.distances_from(root)
    if set(distances) != query.variables:
        raise ValueError("query must be connected to be sliced")
    deepest = max(distances.values())
    slices = [tuple(sorted(v for v, d in distances.items() if d == n))
              for n in range(deepest + 1)]
    return slices


def _answer_vars_per_slice(query: CQ, slices) -> List[Tuple[Variable, ...]]:
    """``x^n``: the answer variables occurring in ``q_n``, which consists
    of the atoms whose variables all sit at distance >= n."""
    result = []
    for n in range(len(slices)):
        allowed: Set[Variable] = set()
        for far in slices[n:]:
            allowed.update(far)
        occurring = {var for atom in query.atoms
                     if set(atom.args) <= allowed for var in atom.args}
        result.append(tuple(v for v in query.answer_vars if v in occurring))
    return result


def _local_types(tbox, query: CQ, slice_vars, candidates) -> List[Type]:
    """All locally compatible types for a slice (the per-variable
    conditions; slices of a rooted tree have no internal edges)."""
    types: List[Type] = [{}]
    for var in slice_vars:
        types = [dict(assignment, **{var: word})
                 for assignment in types
                 for word in candidates[var]]
    return types


def _pair_ok(tbox, query: CQ, current_slice, next_slice,
             current: Type, succ: Type) -> bool:
    """Compatibility of ``(w, s)`` with ``(z^n, z^{n+1})``: the crossing
    binary atoms must satisfy the three-way condition."""
    next_set = set(next_slice)
    current_set = set(current_slice)
    for atom in query.binary_atoms():
        first, second = atom.args
        if first in current_set and second in next_set:
            if not pair_compatible(tbox, atom, current[first], succ[second]):
                return False
        elif second in current_set and first in next_set:
            if not pair_compatible(tbox, atom, succ[first], current[second]):
                return False
    return True


def _atoms_touching(query: CQ, slice_vars, next_vars) -> List[Atom]:
    """Atoms with a variable in ``slice_vars`` and all variables within
    the two slices — the scope of ``At^{w u s}`` for one chain step."""
    scope = set(slice_vars) | set(next_vars)
    touch = set(slice_vars)
    return [atom for atom in query.atoms
            if set(atom.args) <= scope and set(atom.args) & touch]
