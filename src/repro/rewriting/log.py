"""The Log rewriter (Section 3.2): NDL-rewritings for ``OMQ(d, t, inf)``
— bounded-depth ontologies with bounded-treewidth CQs — evaluable in
LOGCFL (Theorem 9).

A tree decomposition of the CQ is split recursively at the nodes
provided by Lemma 10, halving subtree sizes; each subtree ``D`` and
boundary type ``w`` yields a predicate ``G^w_D`` defined from the types
``s`` of the splitting bag compatible with ``w``.  The resulting query
has width <= 3(t+1) and logarithmic skinny depth, so it falls in the
LOGCFL fragment of Section 3.1.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..datalog.program import Clause, Literal, NDLQuery, Program
from ..datalog.transform import star_transform
from ..ontology.depth import chase_depth
from ..queries.cq import CQ, Atom, Variable
from ..queries.treedecomp import (
    TreeDecomposition,
    subtree_components,
    tree_decomposition,
)
from .types import (
    Type,
    at_atoms,
    candidate_words,
    enumerate_words,
    type_compatible_with_atoms,
    type_key,
)

Subtree = FrozenSet[int]


def log_rewrite(tbox, query: CQ,
                decomposition: Optional[TreeDecomposition] = None,
                over: str = "complete", simplify: bool = True) -> NDLQuery:
    """The NDL-rewriting of ``(T, q)`` of Theorem 9.

    ``decomposition`` defaults to the natural/min-fill decomposition of
    the query; ``over`` selects complete vs arbitrary data instances
    (the latter via the ``*`` transformation of Section 2).
    ``simplify`` applies the Appendix A.6.2 display simplification
    (leaf bags are inlined into their callers); pass ``False`` to get
    the verbatim construction whose width is bounded by ``3(t+1)``.
    """
    depth = chase_depth(tbox)
    if depth is math.inf:
        raise ValueError(
            "the Log rewriter needs an ontology of finite depth")
    if decomposition is None:
        decomposition = tree_decomposition(query)
    builder = _LogBuilder(tbox, query, decomposition, int(depth))
    result = builder.build()
    if simplify:
        from ..datalog.transform import inline_edb_leaves

        result = inline_edb_leaves(result)
    if over == "arbitrary":
        result = star_transform(result, tbox)
    return result


class _LogBuilder:
    def __init__(self, tbox, query: CQ, decomposition: TreeDecomposition,
                 depth: int):
        self.tbox = tbox
        self.query = query
        self.decomposition = decomposition
        self.words = enumerate_words(tbox, depth)
        self.candidates: Dict[Variable, List] = {
            var: candidate_words(tbox, query, var, self.words)
            for var in query.variables}
        self.clauses: List[Clause] = []
        self.names: Dict[Tuple, str] = {}
        self.memo: Dict[Tuple, bool] = {}

    # -- Lemma 10 splitting -------------------------------------------------

    def _degree(self, subtree: Subtree) -> int:
        tree = self.decomposition.tree
        return sum(
            1 for node in subtree
            if any(neigh not in subtree for neigh in tree.neighbors(node)))

    def _split(self, subtree: Subtree) -> Tuple[int, List[Subtree]]:
        """A node satisfying Lemma 10 for ``subtree`` and the resulting
        components; existence is guaranteed for subtrees of degree <= 2.

        For degree <= 1 every component must halve; for degree 2 a
        single oversized component of degree <= 1 is tolerated (it is
        halved by the next recursion step), keeping the overall depth
        logarithmic.
        """
        if len(subtree) == 1:
            return next(iter(subtree)), []
        size = len(subtree)
        degree = self._degree(subtree)
        best: Optional[Tuple[int, List[Subtree]]] = None
        best_worst = None
        for node in sorted(subtree):
            components = subtree_components(self.decomposition.tree, subtree,
                                            node)
            if any(self._degree(part) > 2 for part in components):
                continue
            large = [part for part in components if len(part) > size / 2]
            if degree == 2:
                if len(large) > 1:
                    continue
                if large and (self._degree(large[0]) > 1
                              or len(large[0]) >= size - 1):
                    continue
            elif large:
                continue
            worst = max(len(part) for part in components)
            if best_worst is None or worst < best_worst:
                best, best_worst = (node, components), worst
        if best is None:
            raise AssertionError(
                "Lemma 10 split not found - decomposition degree invariant "
                "violated")
        return best

    # -- boundary and atoms --------------------------------------------------

    def _boundary_vars(self, subtree: Subtree) -> Tuple[Variable, ...]:
        """``dD``: the variables shared between boundary bags of ``D`` and
        their outside neighbours."""
        tree = self.decomposition.tree
        bags = self.decomposition.bags
        shared: Set[Variable] = set()
        for node in subtree:
            for neigh in tree.neighbors(node):
                if neigh not in subtree:
                    shared |= bags[node] & bags[neigh]
        return tuple(sorted(shared))

    def _atoms_of(self, subtree: Subtree) -> List[Atom]:
        """``q_D``: the atoms contained in some bag of ``D``."""
        bags = [self.decomposition.bags[node] for node in subtree]
        return [atom for atom in self.query.atoms
                if any(set(atom.args) <= bag for bag in bags)]

    def _answer_vars_of(self, subtree: Subtree) -> Tuple[Variable, ...]:
        occurring = {var for atom in self._atoms_of(subtree)
                     for var in atom.args}
        return tuple(v for v in self.query.answer_vars if v in occurring)

    def _bag_atoms(self, node: int) -> List[Atom]:
        bag = self.decomposition.bags[node]
        return [atom for atom in self.query.atoms
                if set(atom.args) <= bag]

    # -- predicates -----------------------------------------------------------

    def _predicate(self, subtree: Subtree, boundary_type: Type) -> Literal:
        key = (subtree, type_key(boundary_type))
        if key not in self.names:
            self.names[key] = f"D{len(self.names)}"
        boundary = self._boundary_vars(subtree)
        answers = self._answer_vars_of(subtree)
        args = boundary + tuple(v for v in answers if v not in boundary)
        return Literal(self.names[key], args)

    # -- recursive construction ------------------------------------------------

    def build(self) -> NDLQuery:
        root: Subtree = frozenset(self.decomposition.tree.nodes)
        if self._construct(root, {}):
            goal_literal = self._predicate(root, {})
        else:
            # unsatisfiable rewriting: goal predicate with no defining clause
            goal_literal = Literal("D_empty", tuple(self.query.answer_vars))
        program = Program(self.clauses)
        return NDLQuery(program, goal_literal.predicate,
                        tuple(self.query.answer_vars))

    def _construct(self, subtree: Subtree, boundary_type: Type) -> bool:
        """Emit the clauses for ``G^w_D``; returns False when the
        predicate is unproductive (no definition — a "dead end")."""
        key = (subtree, type_key(boundary_type))
        if key in self.memo:
            return self.memo[key]
        self.memo[key] = False  # guards against re-entry; overwritten below
        split, components = self._split(subtree)
        bag = tuple(sorted(self.decomposition.bags[split]))
        bag_atoms = self._bag_atoms(split)
        productive = False
        for bag_type in self._bag_types(bag, boundary_type, bag_atoms):
            merged = dict(boundary_type)
            merged.update(bag_type)
            body: List[object] = list(at_atoms(self.tbox, bag_atoms,
                                               bag_type))
            children_ok = True
            for part in components:
                child_boundary = self._boundary_vars(part)
                child_type = {var: merged[var] for var in child_boundary}
                if not self._construct(part, child_type):
                    children_ok = False
                    break
                body.append(self._predicate(part, child_type))
            if not children_ok:
                continue
            productive = True
            self.clauses.append(
                Clause(self._predicate(subtree, boundary_type), tuple(body)))
        self.memo[key] = productive
        return productive

    def _bag_types(self, bag: Sequence[Variable], boundary_type: Type,
                   bag_atoms: List[Atom]):
        """Types ``s`` on the splitting bag compatible with the bag and
        agreeing with the boundary type ``w`` on the common domain."""
        assignments: List[Type] = [{}]
        for var in bag:
            if var in boundary_type:
                options = [boundary_type[var]]
            else:
                options = self.candidates[var]
            assignments = [dict(assignment, **{var: word})
                           for assignment in assignments
                           for word in options]
        for assignment in assignments:
            if type_compatible_with_atoms(self.tbox, bag_atoms, assignment):
                yield assignment
