"""Tree-witness PE-rewritings (the positive-existential target of
Figure 1b).

The PE-rewriting factorises the tree-witness UCQ like the Presto-style
NDL rewriting — one disjunction per cluster of overlapping tree
witnesses — but stays a single positive-existential formula, as in the
hand-written PE-rewriting of Appendix A.6.1.  Witness roots ``tr`` are
glued by explicit equalities (Section 2 allows equality in
FO/PE-rewritings).

Figure 1(b)'s message is visible experimentally: PE-rewritings blow up
within clusters while the optimal NDL-rewritings stay linear
(``benchmarks/bench_rewriting_targets.py``).
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List, Set

from ..ontology.tbox import surrogate_name
from ..queries.cq import CQ, Atom
from ..queries.pe import And, Or, PEAtom, PEEq, PEQuery
from .presto import _clusters
from .tree_witness import independent_subsets, tree_witnesses


def pe_rewrite(tbox, query: CQ) -> PEQuery:
    """The tree-witness PE-rewriting of ``(T, q)`` over complete data
    instances, as a :class:`repro.queries.pe.PEQuery`."""
    witnesses = tree_witnesses(tbox, query)
    clusters = _clusters(witnesses)
    regions: List[FrozenSet[Atom]] = []
    for cluster in clusters:
        region: Set[Atom] = set()
        for witness in cluster:
            region |= witness.atoms
        regions.append(frozenset(region))
    covered: Set[Atom] = set()
    for region in regions:
        covered |= region

    parts: List[object] = [PEAtom(atom.predicate, atom.args)
                           for atom in query.atoms
                           if atom not in covered]
    global_vars = set(query.answer_vars)
    for atom in query.atoms:
        if atom not in covered:
            global_vars.update(atom.args)
    for cluster, region in zip(clusters, regions):
        disjuncts: List[object] = []
        for chosen in independent_subsets(cluster):
            chosen_cover: Set[Atom] = set()
            for witness in chosen:
                chosen_cover |= witness.atoms
            remaining = [atom for atom in sorted(region)
                         if atom not in chosen_cover]
            pools = [witness.generators for witness in chosen]
            for roles in itertools.product(*pools):
                body: List[object] = [PEAtom(atom.predicate, atom.args)
                                      for atom in remaining]
                for witness, role in zip(chosen, roles):
                    anchor = (min(witness.roots) if witness.roots
                              else "_z_root")
                    body.append(PEAtom(surrogate_name(role), (anchor,)))
                    body.extend(PEEq(var, anchor)
                                for var in sorted(witness.roots - {anchor}))
                disjuncts.append(And(tuple(body)) if len(body) != 1
                                 else body[0])
        parts.append(Or(tuple(disjuncts)) if len(disjuncts) != 1
                     else disjuncts[0])
    matrix = And(tuple(parts)) if len(parts) != 1 else parts[0]
    return PEQuery(matrix, tuple(query.answer_vars))
