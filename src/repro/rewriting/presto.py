"""A Presto-style factorised NDL rewriting over complete data instances
(our stand-in for the Presto engine of Rosati & Almatelli 2010).

Tree witnesses are grouped into *clusters* of pairwise-overlapping
witnesses; each cluster gets its own IDB predicate whose clauses
enumerate the independent witness subsets within the cluster, and a
single top clause joins the clusters.  Compared with the plain UCQ
rewriting this shares structure across clusters (the Presto idea of
factorising the rewriting), but within a cluster the enumeration is
still exponential — matching the growth of the Presto column in
Table 1.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List, Set, Tuple

import networkx as nx

from ..datalog.program import Clause, Equality, Literal, NDLQuery, Program
from ..datalog.transform import star_transform
from ..ontology.tbox import surrogate_name
from ..queries.cq import CQ, Atom
from .tree_witness import TreeWitness, conflict, independent_subsets, tree_witnesses


def presto_rewrite(tbox, query: CQ, over: str = "complete") -> NDLQuery:
    """The factorised tree-witness NDL rewriting of ``(T, q)``."""
    witnesses = tree_witnesses(tbox, query)
    clusters = _clusters(witnesses)
    head = Literal("G", tuple(query.answer_vars))
    clauses: List[Clause] = []

    region_atoms: List[FrozenSet[Atom]] = []
    for cluster in clusters:
        region: Set[Atom] = set()
        for witness in cluster:
            region |= witness.atoms
        region_atoms.append(frozenset(region))

    covered_by_clusters: Set[Atom] = set()
    for region in region_atoms:
        covered_by_clusters |= region

    top_body: List[object] = [Literal(atom.predicate, atom.args)
                              for atom in query.atoms
                              if atom not in covered_by_clusters]
    for index, (cluster, region) in enumerate(zip(clusters, region_atoms)):
        name = f"C{index}"
        interface = _interface_vars(query, region)
        top_body.append(Literal(name, interface))
        for chosen in independent_subsets(cluster):
            covered: Set[Atom] = set()
            for witness in chosen:
                covered |= witness.atoms
            remaining = [atom for atom in sorted(region)
                         if atom not in covered]
            pools = [witness.generators for witness in chosen]
            for roles in itertools.product(*pools):
                body: List[object] = [Literal(atom.predicate, atom.args)
                                      for atom in remaining]
                for witness, role in zip(chosen, roles):
                    if witness.roots:
                        anchor = min(witness.roots)
                        body.append(
                            Literal(surrogate_name(role), (anchor,)))
                        body.extend(
                            Equality(var, anchor)
                            for var in sorted(witness.roots - {anchor}))
                    else:
                        body.append(Literal(surrogate_name(role),
                                            ("_z_root",)))
                clauses.append(Clause(Literal(name, interface), tuple(body)))
    clauses.append(Clause(head, tuple(top_body)))
    result = NDLQuery(Program(clauses), "G", tuple(query.answer_vars))
    if over == "arbitrary":
        result = star_transform(result, tbox)
    return result


def _clusters(witnesses: List[TreeWitness]) -> List[List[TreeWitness]]:
    """Connected components of the conflict graph on tree witnesses."""
    graph = nx.Graph()
    graph.add_nodes_from(range(len(witnesses)))
    for i in range(len(witnesses)):
        for j in range(i + 1, len(witnesses)):
            if conflict(witnesses[i], witnesses[j]):
                graph.add_edge(i, j)
    return [[witnesses[i] for i in sorted(component)]
            for component in sorted(nx.connected_components(graph),
                                    key=sorted)]


def _interface_vars(query: CQ, region: FrozenSet[Atom]) -> Tuple[str, ...]:
    """The variables a cluster predicate must expose: those shared with
    the rest of the query or answer variables."""
    region_vars = {var for atom in region for var in atom.args}
    outside_vars = {var for atom in query.atoms if atom not in region
                    for var in atom.args}
    interface = region_vars & (outside_vars | set(query.answer_vars))
    return tuple(sorted(interface))
