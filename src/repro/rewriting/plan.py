"""The compiled query pipeline: ``compile(omq, options) -> Plan``.

The paper's central object is the pair "rewriting + evaluation":
reduction (1) compiles an OMQ ``(T, q)`` into an NDL query once, and
Tables 3-5 measure properties of that compiled artifact (size, width,
depth) separately from evaluation time.  This module makes the
separation explicit, the way mature query engines split *prepare* from
*execute*:

* :class:`AnswerOptions` — the one configuration object threaded
  through every layer (sessions, service, HTTP, CLI, experiments)
  instead of per-call ``method``/``magic``/``optimize``/``engine``
  kwargs;
* :func:`compile_omq` — run the data-independent pipeline (rewrite,
  magic sets, optionally the data optimiser) once and freeze the
  result;
* :class:`Plan` — the frozen, fingerprintable compiled artifact:
  introspection via :meth:`Plan.explain`, execution via
  :meth:`Plan.execute` against any ABox, session or loaded engine;
* :class:`Answers` — the typed execution result: answer tuples plus
  timings and provenance (which plan, which engine, which method).

Plans are reusable across datasets and engines: compile once, execute
many — the :class:`~repro.service.cache.RewritingCache` stores plans
keyed by canonical ``(tbox, cq, options)`` fingerprints.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from ..data.abox import ABox
from ..datalog.program import NDLQuery
from ..engine import ENGINES, SQL_ENGINES, Engine
from ..obs import trace as _trace
from .api import METHODS, OMQ, AnswerSession, resolve_method, rewrite

#: Everything :class:`AnswerOptions` accepts as a ``method`` — the
#: Section 3 rewriters and baselines plus the two meta-strategies.
OPTION_METHODS = ("auto", "adaptive") + METHODS

_OVER = ("complete", "arbitrary")


@dataclass(frozen=True)
class AnswerOptions:
    """Configuration of the answering pipeline, one object for every
    layer.

    ``method``, ``magic``, ``optimize`` and ``over`` select the
    *compile*-time pipeline (they shape the NDL program and therefore
    partition plan-cache keys); ``engine`` and ``timeout`` are
    *execution*-time knobs (they never partition the cache).

    ``timeout`` is a soft per-evaluation budget in seconds, enforced
    the way the paper's experiments enforce theirs: the evaluation
    runs to completion and the result is flagged
    :attr:`Answers.timed_out` when it overran (callers like the
    Tables 3-5 harness then skip larger instances).

    ``shards`` (another execution-time knob) asks for component-based
    sharded execution: ``Plan.execute`` over a bare ABox with
    ``shards >= 2`` partitions it through a
    :class:`~repro.shard.session.ShardedSession` and scatter-gathers
    (``0``/``1`` keep the monolithic path).  ``shards="auto"`` sizes
    the partition from the live CPU count and the component-weight
    skew (:func:`repro.shard.partition.auto_shards`).  ``start_method``
    picks the worker start method for process-backed sharding
    (``fork``/``forkserver``/``spawn``; ``None`` auto-selects).

    ``optimize_sql`` runs the :mod:`repro.sql.optimize` pass pipeline
    over the compiled SQL on SQL-compiling engines (``sql``,
    ``sql-views``, ``duckdb``); the python engine ignores it.
    """

    method: str = "auto"
    magic: bool = False
    optimize: bool = False
    engine: Optional[str] = None
    timeout: Optional[float] = None
    over: str = "complete"
    #: ``0``/``1`` monolithic, ``>= 2`` that many shards, ``"auto"``
    #: adaptive (sized from CPUs and component skew, resharding on
    #: rebalancing updates)
    shards: object = 0
    optimize_sql: bool = False
    start_method: Optional[str] = None

    def __post_init__(self):
        if self.method not in OPTION_METHODS:
            raise ValueError(f"unknown rewriting method {self.method!r}; "
                             f"expected one of {OPTION_METHODS}")
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"expected one of {ENGINES}")
        if self.over not in _OVER:
            raise ValueError(f"over must be one of {_OVER}, "
                             f"got {self.over!r}")
        if self.timeout is not None and self.timeout < 0:
            raise ValueError("timeout must be non-negative")
        if self.shards != "auto" and (
                not isinstance(self.shards, int) or self.shards < 0):
            raise ValueError("shards must be a non-negative int or "
                             f"'auto', got {self.shards!r}")
        if self.start_method not in (None, "fork", "forkserver", "spawn"):
            raise ValueError("start_method must be None, 'fork', "
                             "'forkserver' or 'spawn', "
                             f"got {self.start_method!r}")

    @classmethod
    def from_legacy(cls, options=None, method: str = "auto",
                    magic: bool = False, optimize: bool = False,
                    engine: Optional[str] = None) -> "AnswerOptions":
        """The one fallback from legacy per-call flags to options.

        With ``options`` set the flags are ignored except ``engine``,
        which overrides as the explicit per-call knob it always was;
        without it the flags build the options.  Shared by
        ``AnswerSession.answer``, ``OMQService.answer`` and
        ``BatchRequest`` so the semantics cannot drift.
        """
        if options is not None:
            return cls.coerce(options, engine=engine)
        return cls(method=method, magic=magic, optimize=optimize,
                   engine=engine)

    @classmethod
    def coerce(cls, value=None, **overrides) -> "AnswerOptions":
        """An :class:`AnswerOptions` from ``None``, a mapping or an
        existing instance, with keyword overrides applied on top."""
        if value is None:
            options = cls()
        elif isinstance(value, cls):
            options = value
        elif isinstance(value, Mapping):
            unknown = set(value) - {f.name for f in dataclasses.fields(cls)}
            if unknown:
                raise ValueError(
                    f"unknown answer option(s): {sorted(unknown)}")
            options = cls(**value)
        else:
            raise TypeError("options must be an AnswerOptions, a mapping "
                            f"or None, got {type(value).__name__}")
        overrides = {key: value for key, value in overrides.items()
                     if value is not None}
        return options.replace(**overrides) if overrides else options

    def replace(self, **changes) -> "AnswerOptions":
        """A copy with the given fields changed (validated again)."""
        return dataclasses.replace(self, **changes)

    def rewrite_fingerprint(self) -> Tuple:
        """The compile-relevant subset, as hashed into plan-cache keys.

        ``engine``, ``timeout`` and ``shards`` are deliberately
        excluded: they do not change the compiled program, and
        including them would fragment the cache (one compiled plan
        serves every engine and any shard count).  ``optimize_sql``
        *is* included: it does not change the NDL either, but a cached
        plan's :meth:`Plan.explain` reports the SQL pass log, which
        must reflect the knob the requester asked for — not the first
        compiler's.
        """
        return (self.method, bool(self.magic), bool(self.optimize),
                self.over, bool(self.optimize_sql))

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @property
    def data_dependent(self) -> bool:
        """Whether compilation needs a data instance (and the plan is
        therefore specialised to it and bypasses the shared cache)."""
        return self.method == "adaptive" or self.optimize


@dataclass(frozen=True)
class Answers:
    """The result of executing a :class:`Plan`: certain answers plus
    timings and provenance.

    Field-compatible with the engine layer's
    :class:`~repro.datalog.evaluate.EvaluationResult` (``answers``,
    ``generated_tuples``, ``relation_sizes``), so legacy callers keep
    working; on top it records which plan produced it and how.
    """

    answers: FrozenSet[Tuple[str, ...]]
    generated_tuples: int = 0
    relation_sizes: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0
    engine: str = "python"
    method: str = "auto"
    plan_fingerprint: str = ""
    cached_rewriting: bool = False
    timed_out: bool = False
    #: Sharded-execution provenance: how many shards participated
    #: (``0`` means monolithic) and each shard's evaluation seconds.
    shards: int = 0
    shard_seconds: Dict[int, float] = field(default_factory=dict)
    #: The request's span breakdown (a ``Trace.payload()`` dict) when
    #: the caller asked for it — e.g. ``Client.answer(trace=True)``.
    trace: Optional[Dict[str, object]] = field(default=None,
                                               compare=False, repr=False)

    def __iter__(self):
        return iter(self.answers)

    def __len__(self) -> int:
        return len(self.answers)

    def __contains__(self, row) -> bool:
        return row in self.answers

    def sorted(self):
        """The answer tuples in sorted order (for stable printing)."""
        return sorted(self.answers)


@dataclass(frozen=True)
class Plan:
    """A compiled OMQ: the frozen output of :func:`compile_omq`.

    Carries the NDL rewriting plus everything needed to introspect
    (:meth:`explain`) and run (:meth:`execute`) it.  Plans are
    immutable and safe to share across threads, datasets and engines;
    the :class:`~repro.service.cache.RewritingCache` stores them keyed
    by canonical fingerprints, so a plan handed out for one OMQ may
    legitimately answer a renamed-but-isomorphic one.
    """

    omq: OMQ
    options: AnswerOptions
    ndl: NDLQuery
    #: The concretely chosen rewriter (``auto``/``adaptive`` resolved).
    method: str
    #: Per-stage compile timings in seconds (``rewrite``, ``magic``,
    #: ``optimize`` — only the stages that ran).
    timings: Mapping[str, float] = field(default_factory=dict)
    #: True when compilation consulted a data instance (``adaptive``
    #: method or the ``optimize`` stage with data): the plan is then
    #: specialised to that instance's signature.
    data_bound: bool = False

    def __post_init__(self):
        object.__setattr__(self, "timings",
                           MappingProxyType(dict(self.timings)))

    # mappingproxy is not picklable, and plans must travel to shard
    # worker processes — pickle the timings as a plain dict and
    # re-wrap on load
    def __getstate__(self):
        state = dict(self.__dict__)
        state["timings"] = dict(state["timings"])
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, "timings",
                           MappingProxyType(dict(state["timings"])))

    @property
    def fingerprint(self) -> str:
        """A stable hex digest of (OMQ up to renaming, compile options)."""
        text = (f"{self.omq.fingerprint()}\n"
                f"{self.options.rewrite_fingerprint()!r}")
        return hashlib.sha256(text.encode()).hexdigest()

    # -- introspection -----------------------------------------------------

    @property
    def rules(self) -> int:
        """Clause count of the rewriting (the paper's size measure)."""
        return len(self.ndl)

    @property
    def width(self) -> int:
        return self.ndl.width()

    @property
    def depth(self) -> int:
        return self.ndl.depth()

    def sql_report(self, engine: Optional[str] = None,
                   optimize_sql: Optional[bool] = None) -> Dict[str, object]:
        """The SQL the plan compiles to on a SQL engine: dialect,
        optimizer pass log, statements and goal select.

        ``engine`` defaults to the plan's own (or ``sql-views``);
        ``optimize_sql`` to the plan's knob.  JSON-serialisable.
        """
        from ..sql.compile import compile_query

        name = engine or self.options.engine or "sql-views"
        if name not in SQL_ENGINES:
            raise ValueError(f"sql_report needs a SQL engine "
                             f"(one of {SQL_ENGINES}), got {name!r}")
        if optimize_sql is None:
            optimize_sql = self.options.optimize_sql
        compilation = compile_query(
            self.ndl, materialised=(name == "sql"),
            optimize=bool(optimize_sql),
            dialect="duckdb" if name == "duckdb" else "sqlite")
        return {
            "engine": name,
            "dialect": compilation.dialect,
            "materialised": compilation.materialised,
            "optimize_sql": bool(optimize_sql),
            "passes": [dict(entry) for entry in compilation.passes],
            "statements": list(compilation.statements),
            "goal_select": compilation.goal_select,
        }

    def explain(self) -> Dict[str, object]:
        """The plan report: what was compiled, how, and how big it is.

        JSON-serialisable — the CLI ``explain`` subcommand and the HTTP
        ``/explain`` endpoint return exactly this dict.  When the
        plan's engine compiles to SQL, the report carries a ``"sql"``
        section (see :meth:`sql_report`) with the optimizer pass log
        and the final SQL.
        """
        report = {
            "fingerprint": self.fingerprint,
            "omq_class": self.omq.omq_class(),
            "method_requested": self.options.method,
            "method": self.method,
            "magic": self.options.magic,
            "optimize": self.options.optimize,
            "optimize_sql": self.options.optimize_sql,
            "over": self.options.over,
            "engine": self.options.engine,
            "timeout": self.options.timeout,
            "shards": self.options.shards,
            "start_method": self.options.start_method,
            "data_bound": self.data_bound,
            "goal": self.ndl.goal,
            "answer_vars": list(self.ndl.answer_vars),
            "rules": self.rules,
            "width": self.width,
            "depth": self.depth,
            "compile_seconds": round(sum(self.timings.values()), 6),
            "stages": {stage: round(seconds, 6)
                       for stage, seconds in self.timings.items()},
        }
        if self.options.engine in SQL_ENGINES:
            report["sql"] = self.sql_report()
        active = _trace.current_trace()
        if active is not None:
            report["trace"] = active.payload()
        return report

    # -- execution ---------------------------------------------------------

    def _variant_tbox(self):
        """The completion variant the plan evaluates over: ``None``
        selects the raw data (arbitrary-instance rewritings)."""
        if self.method == "perfectref" or self.options.over == "arbitrary":
            return None
        return self.omq.tbox

    def execute(self, data, engine: Optional[str] = None,
                options: Optional[AnswerOptions] = None) -> Answers:
        """Run the plan and return typed :class:`Answers`.

        ``data`` may be

        * an :class:`~repro.rewriting.api.AnswerSession` — the backend
          for the right data variant (raw vs completed) is reused;
        * an :class:`~repro.engine.backends.Engine` — evaluated as-is
          (the caller owns the completion, as the experiment harnesses
          do);
        * an :class:`~repro.data.abox.ABox` — a one-shot session is
          created and closed around the call (a
          :class:`~repro.shard.session.ShardedSession` when the
          effective options ask for ``shards >= 2``);
        * a :class:`~repro.shard.session.ShardedSession` — the plan is
          broadcast scatter-gather over the per-shard engines.

        Execution knobs resolve caller-first: ``engine`` beats
        ``options.engine`` beats the plan's own compile-time options.
        ``options`` matters when the plan came out of a shared cache —
        cache keys deliberately ignore engine/timeout/shards, so the
        *first* compiler's knobs must never leak into later requests;
        callers holding a request-level :class:`AnswerOptions`
        (sessions, the service) pass it here.
        """
        from ..shard.session import ShardedSession

        effective = self.options if options is None else options
        if isinstance(data, ABox):
            name = engine or effective.engine or "python"
            if effective.shards == "auto" or effective.shards >= 2:
                with ShardedSession(
                        data, shards=effective.shards, engine=name,
                        start_method=effective.start_method) as session:
                    return session.execute_plan(self, engine=name,
                                                options=options)
            with AnswerSession(data, engine=name) as session:
                return self.execute(session, engine=name, options=options)
        if isinstance(data, Engine):
            return self._finish(data.evaluate, data.name, effective)
        if isinstance(data, AnswerSession):
            name = engine or effective.engine or data.engine
            backend = data.backend(name, self._variant_tbox())
            return self._finish(backend.evaluate, name, effective)
        if isinstance(data, ShardedSession):
            return data.execute_plan(self, engine=engine, options=options)
        raise TypeError("Plan.execute expects an ABox, AnswerSession, "
                        "ShardedSession or Engine, "
                        f"got {type(data).__name__}")

    def _finish(self, evaluate, engine_name: str,
                options: AnswerOptions) -> Answers:
        started = time.perf_counter()
        with _trace.span("execute") as exec_span:
            exec_span.attrs["engine"] = engine_name
            if options.optimize_sql:
                try:
                    result = evaluate(self.ndl, optimize_sql=True)
                except TypeError:
                    # duck-typed evaluators without the knob: the pass
                    # pipeline is an SQL-layer concern they cannot
                    # honour
                    result = evaluate(self.ndl)
            else:
                result = evaluate(self.ndl)
        elapsed = time.perf_counter() - started
        timeout = options.timeout
        return Answers(answers=result.answers,
                       generated_tuples=result.generated_tuples,
                       relation_sizes=dict(result.relation_sizes),
                       seconds=elapsed, engine=engine_name,
                       method=self.method,
                       plan_fingerprint=self.fingerprint,
                       timed_out=timeout is not None and elapsed > timeout)

    def __repr__(self) -> str:
        return (f"Plan(method={self.method!r}, rules={self.rules}, "
                f"width={self.width}, depth={self.depth}, "
                f"fingerprint={self.fingerprint[:12]!r})")


def compile_omq(omq: OMQ, options=None, *, data=None, cache=None,
                **overrides) -> Plan:
    """Compile an OMQ into a reusable :class:`Plan`.

    The prepare half of the pipeline: rewrite (per
    ``options.method``), then magic sets (``options.magic``), then the
    Appendix D.4 optimiser (``options.optimize``).  ``options`` may be
    an :class:`AnswerOptions`, a mapping or ``None``; field overrides
    can be given directly (``compile_omq(omq, method="lin")``).

    ``data`` (an ABox) is only consulted by the data-dependent stages:
    the ``adaptive`` method costs its candidates against it (pass the
    *completion* the plan will run over — sessions do) and the
    optimiser prunes empty predicates with it.  ``adaptive`` without
    data is an error; ``optimize`` without data still deduplicates and
    inlines, it just cannot prune.

    ``cache`` is an optional :class:`~repro.service.cache.RewritingCache`;
    data-independent plans are fetched from / stored into it keyed by
    canonical ``(tbox, cq, options)`` fingerprints.  Data-dependent
    plans bypass it (they are specialised to one instance).
    """
    options = AnswerOptions.coerce(options, **overrides)
    if cache is not None and not options.data_dependent:
        return cache.get_or_compute(
            cache.key(omq, options),
            lambda: _compile(omq, options, data))
    return _compile(omq, options, data)


def _compile(omq: OMQ, options: AnswerOptions, data) -> Plan:
    timings: Dict[str, float] = {}
    data_bound = False
    started = time.perf_counter()
    if options.method == "adaptive":
        if data is None:
            raise ValueError("method='adaptive' needs a data instance to "
                             "cost its candidates; pass data=<completed "
                             "ABox> (or compile through a session)")
        from .adaptive import adaptive_rewrite

        choice = adaptive_rewrite(omq, data, over=options.over)
        method, ndl = choice.method, choice.query
        data_bound = True
    else:
        method = resolve_method(omq, options.method)
        ndl = rewrite(omq, method=method, over=options.over)
    timings["rewrite"] = time.perf_counter() - started

    if options.optimize and options.method != "adaptive":
        # adaptive already optimises its candidates before costing them
        from ..datalog.optimize import optimize

        started = time.perf_counter()
        ndl = optimize(ndl, data)
        timings["optimize"] = time.perf_counter() - started
        data_bound = data_bound or data is not None

    if options.magic:
        from ..datalog.magic import magic_transform

        started = time.perf_counter()
        ndl = magic_transform(ndl).query
        timings["magic"] = time.perf_counter() - started

    for stage, seconds in timings.items():
        _trace.record(stage, seconds)
    return Plan(omq=omq, options=options, ndl=ndl, method=method,
                timings=timings, data_bound=data_bound)


def format_explain(report: Mapping[str, object]) -> str:
    """Render a :meth:`Plan.explain` report as aligned text (the CLI's
    non-JSON output)."""
    lines = []
    order = ("omq_class", "method_requested", "method", "magic",
             "optimize", "optimize_sql", "over", "engine", "timeout",
             "shards", "start_method", "data_bound", "goal",
             "answer_vars", "rules",
             "width", "depth", "compile_seconds", "fingerprint")
    for key in order:
        if key not in report:
            continue
        value = report[key]
        if key == "answer_vars":
            value = ", ".join(value) if value else "(boolean)"
        lines.append(f"{key.replace('_', ' '):17} {value}")
    stages = report.get("stages") or {}
    for stage, seconds in stages.items():
        lines.append(f"{'  stage ' + stage:17} {seconds}s")
    sql = report.get("sql") or {}
    if sql:
        lines.append(f"{'sql dialect':17} {sql['dialect']}"
                     f" ({'tables' if sql['materialised'] else 'views'})")
        for entry in sql.get("passes", ()):
            suffix = "  *" if entry.get("changed") else ""
            lines.append(f"  pass {entry['pass']:16} "
                         f"{entry['before']:>4} -> {entry['after']:<4}"
                         f"{suffix}")
    return "\n".join(lines)
