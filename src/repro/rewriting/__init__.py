"""Query rewriting: the three optimal NDL rewriters, the baselines and
the cost-based adaptive strategy of Section 6."""

from .adaptive import (
    AdaptiveChoice,
    DataStatistics,
    adaptive_rewrite,
    answer_adaptive,
    estimate_cost,
)
from .api import (
    ENGINES,
    METHODS,
    OMQ,
    AnswerSession,
    answer,
    resolve_method,
    rewrite,
)
from .lin import lin_rewrite
from .log import log_rewrite
from .pe_rewriter import pe_rewrite
from .perfectref import perfectref_rewrite
from .plan import (
    Answers,
    AnswerOptions,
    Plan,
    compile_omq,
    format_explain,
)
from .presto import presto_rewrite
from .tree_witness import TreeWitness, tree_witnesses
from .tw import inline_single_use, splitting_vertex, tw_rewrite
from .ucq import ucq_rewrite

__all__ = [
    "AdaptiveChoice",
    "AnswerOptions",
    "Answers",
    "AnswerSession",
    "DataStatistics",
    "ENGINES",
    "METHODS",
    "OMQ",
    "Plan",
    "TreeWitness",
    "adaptive_rewrite",
    "answer",
    "answer_adaptive",
    "compile_omq",
    "estimate_cost",
    "format_explain",
    "resolve_method",
    "inline_single_use",
    "lin_rewrite",
    "log_rewrite",
    "pe_rewrite",
    "perfectref_rewrite",
    "presto_rewrite",
    "rewrite",
    "splitting_vertex",
    "tree_witnesses",
    "tw_rewrite",
    "ucq_rewrite",
]
