"""The public OMQ-answering API: classify, rewrite, evaluate.

``OMQ`` bundles an ontology with a CQ; :func:`rewrite` dispatches to
the three optimal rewriters of Section 3 (and the baselines), and
:func:`answer` runs the full classical OBDA pipeline of reduction (1):
rewrite, then evaluate the NDL query over the data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..data.abox import ABox
from ..datalog.evaluate import EvaluationResult, evaluate
from ..datalog.program import NDLQuery
from ..queries.cq import CQ
from .lin import lin_rewrite
from .log import log_rewrite
from .perfectref import perfectref_rewrite
from .presto import presto_rewrite
from .tw import tw_rewrite
from .ucq import ucq_rewrite

#: The rewriters compared in Section 6 / Appendix D.
METHODS = ("lin", "log", "tw", "tw_star", "ucq", "perfectref", "presto")


@dataclass(frozen=True)
class OMQ:
    """An ontology-mediated query ``Q(x) = (T, q(x))``."""

    tbox: object
    query: CQ

    @property
    def depth(self):
        """The existential depth of the ontology (int or ``inf``)."""
        return self.tbox.depth()

    @property
    def leaves(self) -> Optional[int]:
        """Leaves of the CQ when tree-shaped, else ``None``."""
        if not self.query.is_tree_shaped:
            return None
        return self.query.number_of_leaves

    @property
    def treewidth(self) -> int:
        return self.query.treewidth()

    def omq_class(self) -> str:
        """The ``OMQ(d, t, l)`` class label of Section 1 this OMQ sits in
        (the most specific of the three tractable classes when any)."""
        depth = self.depth
        finite = depth is not math.inf
        if self.query.is_tree_shaped:
            leaves = self.query.number_of_leaves
            if finite:
                return f"OMQ({depth}, 1, {leaves})"
            return f"OMQ(inf, 1, {leaves})"
        if finite:
            return f"OMQ({depth}, {self.treewidth}, inf)"
        return f"OMQ(inf, {self.treewidth}, inf)"

    def __str__(self) -> str:
        return f"({self.tbox!r}, {self.query})"


def rewrite(omq: OMQ, method: str = "auto",
            over: str = "complete") -> NDLQuery:
    """Rewrite an OMQ into an NDL query.

    ``method`` is one of ``auto``, ``lin``, ``log``, ``tw``, ``tw_star``,
    ``ucq``, ``perfectref``, ``presto``; ``auto`` picks the optimal
    rewriter for the OMQ's tractable class (Lin for bounded-depth
    tree-shaped CQs, Tw for infinite depth with tree-shaped CQs, Log
    otherwise).  ``over`` selects complete vs arbitrary data instances
    (``perfectref`` is always over arbitrary instances).
    """
    tbox, query = omq.tbox, omq.query
    if method == "auto":
        if omq.depth is not math.inf:
            method = "lin" if query.is_tree_shaped else "log"
        elif query.is_tree_shaped:
            method = "tw"
        else:
            raise ValueError(
                "no rewriter applies: infinite-depth ontology with a "
                "non-tree-shaped CQ (OMQ answering is NP-hard there)")
    if method == "lin":
        return lin_rewrite(tbox, query, over=over)
    if method == "log":
        return log_rewrite(tbox, query, over=over)
    if method == "tw":
        return tw_rewrite(tbox, query, over=over)
    if method == "tw_star":
        return tw_rewrite(tbox, query, over=over, inline=True)
    if method == "ucq":
        return ucq_rewrite(tbox, query, over=over)
    if method == "presto":
        return presto_rewrite(tbox, query, over=over)
    if method == "perfectref":
        return perfectref_rewrite(tbox, query)
    raise ValueError(f"unknown rewriting method {method!r}; "
                     f"expected one of {('auto',) + METHODS}")


#: Evaluation backends accepted by :func:`answer`.
ENGINES = ("python", "sql", "sql-views")


def answer(omq: OMQ, abox: ABox, method: str = "auto",
           engine: str = "python", optimize_program: bool = False,
           magic: bool = False) -> EvaluationResult:
    """Certain answers to ``omq`` over ``abox`` via rewriting.

    Rewrites over complete data instances and evaluates over the
    completion of ``abox`` (the classical reduction (1) combined with
    Section 2's completeness assumption); ``perfectref`` evaluates its
    arbitrary-instance rewriting over the raw data.

    Optional pipeline stages (all answer-preserving):

    * ``method="adaptive"`` picks the cheapest of the Section 3
      rewriters for this data via the Section 6 cost model;
    * ``optimize_program`` runs the Appendix D.4 optimiser (emptiness
      pruning, deduplication, Tw*-style inlining) on the rewriting;
    * ``magic`` applies the magic-sets transformation before
      evaluation;
    * ``engine`` selects the evaluator: the native Python engine, SQL
      with full materialisation (``"sql"``) or SQL views
      (``"sql-views"``).
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    if method == "adaptive":
        from .adaptive import adaptive_rewrite

        data = abox.complete(omq.tbox)
        ndl = adaptive_rewrite(omq, data).query
    else:
        ndl = rewrite(omq, method=method)
        data = abox if method == "perfectref" else abox.complete(omq.tbox)
        if optimize_program:
            from ..datalog.optimize import optimize

            ndl = optimize(ndl, data)
    if magic:
        from ..datalog.magic import magic_transform

        ndl = magic_transform(ndl).query
    if engine == "python":
        return evaluate(ndl, data)
    from ..sql.engine import evaluate_sql

    return evaluate_sql(ndl, data, materialised=(engine == "sql"))
