"""The public OMQ-answering API: classify, rewrite, evaluate.

``OMQ`` bundles an ontology with a CQ; :func:`rewrite` dispatches to
the three optimal rewriters of Section 3 (and the baselines), and
:func:`answer` runs the full classical OBDA pipeline of reduction (1):
rewrite, then evaluate the NDL query over the data.
:class:`AnswerSession` is the amortised form of :func:`answer`: it
loads a data instance once (per engine, per completion) and answers
any number of OMQs against it — the shape of the paper's Tables 3-5
experiments, where many rewritings run over one dataset.

Both are thin wrappers over the compiled pipeline of
:mod:`repro.rewriting.plan`: :meth:`AnswerSession.compile` (or
:func:`repro.compile`) produces a reusable
:class:`~repro.rewriting.plan.Plan`, and ``Plan.execute`` evaluates it
over any session, ABox or loaded engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .plan import Answers

from ..data.abox import ABox
from ..datalog.program import NDLQuery
from ..engine import ENGINES, Engine, create_engine
from ..ontology.tbox import TBox
from ..queries.cq import CQ
from .lin import lin_rewrite
from .log import log_rewrite
from .perfectref import perfectref_rewrite
from .presto import presto_rewrite
from .tw import tw_rewrite
from .ucq import ucq_rewrite

#: The rewriters compared in Section 6 / Appendix D.
METHODS = ("lin", "log", "tw", "tw_star", "ucq", "perfectref", "presto")


@dataclass(frozen=True)
class OMQ:
    """An ontology-mediated query ``Q(x) = (T, q(x))``."""

    tbox: TBox
    query: CQ

    @property
    def depth(self):
        """The existential depth of the ontology (int or ``inf``)."""
        return self.tbox.depth()

    @property
    def leaves(self) -> Optional[int]:
        """Leaves of the CQ when tree-shaped, else ``None``."""
        if not self.query.is_tree_shaped:
            return None
        return self.query.number_of_leaves

    @property
    def treewidth(self) -> int:
        return self.query.treewidth()

    def omq_class(self) -> str:
        """The ``OMQ(d, t, l)`` class label of Section 1 this OMQ sits in
        (the most specific of the three tractable classes when any)."""
        depth = self.depth
        finite = depth is not math.inf
        if self.query.is_tree_shaped:
            leaves = self.query.number_of_leaves
            if finite:
                return f"OMQ({depth}, 1, {leaves})"
            return f"OMQ(inf, 1, {leaves})"
        if finite:
            return f"OMQ({depth}, {self.treewidth}, inf)"
        return f"OMQ(inf, {self.treewidth}, inf)"

    def fingerprint(self) -> str:
        """A stable hex digest, canonical up to variable renaming.

        One code path (:func:`repro.fingerprint.omq_fingerprint`) is
        shared with the :class:`~repro.service.cache.RewritingCache`
        keys and :class:`~repro.rewriting.plan.Plan` fingerprints.
        """
        from ..fingerprint import omq_fingerprint

        return omq_fingerprint(self)

    def __str__(self) -> str:
        return f"({self.tbox!r}, {self.query})"


def resolve_method(omq: OMQ, method: str = "auto") -> str:
    """The concrete rewriter ``auto`` resolves to for this OMQ: Lin for
    bounded-depth tree-shaped CQs, Tw for infinite depth with
    tree-shaped CQs, Log otherwise.  Non-``auto`` methods pass
    through."""
    if method != "auto":
        return method
    if omq.depth is not math.inf:
        return "lin" if omq.query.is_tree_shaped else "log"
    if omq.query.is_tree_shaped:
        return "tw"
    raise ValueError(
        "no rewriter applies: infinite-depth ontology with a "
        "non-tree-shaped CQ (OMQ answering is NP-hard there)")


def rewrite(omq: OMQ, method: str = "auto",
            over: str = "complete") -> NDLQuery:
    """Rewrite an OMQ into an NDL query.

    ``method`` is one of ``auto``, ``lin``, ``log``, ``tw``, ``tw_star``,
    ``ucq``, ``perfectref``, ``presto``; ``auto`` picks the optimal
    rewriter for the OMQ's tractable class (see
    :func:`resolve_method`).  ``over`` selects complete vs arbitrary
    data instances (``perfectref`` is always over arbitrary instances).
    """
    tbox, query = omq.tbox, omq.query
    method = resolve_method(omq, method)
    if method == "lin":
        return lin_rewrite(tbox, query, over=over)
    if method == "log":
        return log_rewrite(tbox, query, over=over)
    if method == "tw":
        return tw_rewrite(tbox, query, over=over)
    if method == "tw_star":
        return tw_rewrite(tbox, query, over=over, inline=True)
    if method == "ucq":
        return ucq_rewrite(tbox, query, over=over)
    if method == "presto":
        return presto_rewrite(tbox, query, over=over)
    if method == "perfectref":
        return perfectref_rewrite(tbox, query)
    raise ValueError(f"unknown rewriting method {method!r}; "
                     f"expected one of {('auto',) + METHODS}")


def compile_data_variant(options, abox, completion_of):
    """The data instance the data-dependent compile stages consult
    (``None`` for data-independent compilation).

    One rule for every session flavor — ``adaptive`` costs its
    candidates against the completion; the optimiser prunes against
    the raw data exactly when the rewriting targets arbitrary
    instances (``perfectref`` / ``over="arbitrary"``) and against the
    completion otherwise.  ``completion_of`` is a zero-argument
    callable so the (possibly expensive) completion is only computed
    when a stage actually needs it.
    """
    if options.method == "adaptive":
        return completion_of()
    if options.optimize:
        raw = (options.method == "perfectref"
               or options.over == "arbitrary")
        return abox if raw else completion_of()
    return None


class AnswerSession:
    """Answer many OMQs over one data instance, loading it once.

    The session owns one :class:`~repro.engine.backends.Engine` per
    ``(engine, data variant)`` pair, where the data variant is either
    the raw ABox (``perfectref`` rewrites over arbitrary instances) or
    its completion for a TBox (computed once per TBox and shared by
    every method and engine).  Repeated :meth:`answer` calls therefore
    never re-load, re-complete or re-index the data — only the
    rewriting and the per-query IDB work is paid per call.

    Usage::

        with AnswerSession(abox) as session:
            for method in METHODS:
                print(session.answer(omq, method=method).answers)

    ``data_loads`` counts backend loads (for tests and benchmarks: it
    must stay at one per engine/variant no matter how many queries
    run).
    """

    def __init__(self, abox: ABox, engine: str = "python",
                 extra_relations: Optional[
                     Mapping[str, Iterable[Tuple[str, ...]]]] = None,
                 rewriting_cache=None,
                 shared_completions: Optional[
                     Dict[int, Tuple[object, ABox]]] = None):
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.abox = abox
        self.engine = engine
        self._extra = extra_relations
        #: Optional :class:`repro.service.cache.RewritingCache`; when
        #: set, data-independent rewritings are fetched from / stored
        #: into it (keyed up to variable renaming) instead of being
        #: recomputed per call.
        self.rewriting_cache = rewriting_cache
        #: id(tbox) -> (tbox, completion); the tbox reference keeps the
        #: id stable for the session's lifetime.  A service session
        #: pool passes one shared dict to every pooled session so the
        #: completion is computed once per (dataset, TBox) and updated
        #: in place for the whole pool.
        self._completions: Dict[int, Tuple[object, ABox]] = (
            {} if shared_completions is None else shared_completions)
        self._backends: Dict[Tuple[str, object], Engine] = {}
        self.data_loads = 0

    # -- data variants -----------------------------------------------------

    def completion(self, tbox) -> ABox:
        """The T-completion of the session's ABox, computed once."""
        key = id(tbox)
        entry = self._completions.get(key)
        if entry is None:
            # setdefault, not assignment: with a shared completion dict
            # two pooled sessions may race on first touch, and every
            # backend must end up referencing the one winning ABox
            # object (updates patch that object in place)
            entry = self._completions.setdefault(
                key, (tbox, self.abox.complete(tbox)))
        return entry[1]

    def backend(self, engine: Optional[str] = None,
                tbox=None) -> Engine:
        """The loaded engine for a data variant (built on first use).

        ``tbox=None`` selects the raw ABox; otherwise the completion
        for ``tbox``.
        """
        name = self.engine if engine is None else engine
        if name not in ENGINES:
            raise ValueError(
                f"unknown engine {name!r}; expected one of {ENGINES}")
        variant = "raw" if tbox is None else ("completed", id(tbox))
        key = (name, variant)
        loaded = self._backends.get(key)
        if loaded is None:
            data = self.abox if tbox is None else self.completion(tbox)
            loaded = create_engine(name, data,
                                   extra_relations=self._extra)
            self._backends[key] = loaded
            self.data_loads += 1
        return loaded

    # -- answering ---------------------------------------------------------

    def compile(self, omq: OMQ, options=None, **overrides):
        """Compile ``omq`` into a :class:`~repro.rewriting.plan.Plan`.

        Data-independent plans go through the session's injected
        rewriting cache (when set); the data-dependent stages
        (``adaptive``, ``optimize``) compile against this session's
        data variant and bypass it.
        """
        from .plan import AnswerOptions, compile_omq

        options = AnswerOptions.coerce(options, **overrides)
        data = compile_data_variant(options, self.abox,
                                    lambda: self.completion(omq.tbox))
        return compile_omq(omq, options, data=data,
                           cache=self.rewriting_cache)

    def answer(self, omq: OMQ, method: str = "auto",
               engine: Optional[str] = None,
               optimize_program: bool = False,
               magic: bool = False, options=None) -> "Answers":
        """Certain answers to ``omq``; same pipeline as :func:`answer`.

        A thin wrapper over :meth:`compile` + ``Plan.execute``: pass an
        :class:`~repro.rewriting.plan.AnswerOptions` via ``options``
        (the legacy ``method``/``magic``/``optimize_program`` flags
        build one).  ``engine`` overrides the session default for this
        call only — every engine keeps its own loaded copy of the
        data, so cross-engine comparisons also amortise.
        """
        from .plan import AnswerOptions

        options = AnswerOptions.from_legacy(options, method=method,
                                            magic=magic,
                                            optimize=optimize_program)
        plan = self.compile(omq, options)
        # this request's options, not the (possibly cache-shared)
        # plan's: execution knobs must never leak between requests
        return plan.execute(self, engine=engine, options=options)

    # -- incremental updates -----------------------------------------------

    def apply_update(self, inserts: Iterable[Tuple[str, Tuple[str, ...]]] = (),
                     deletes: Iterable[Tuple[str, Tuple[str, ...]]] = ()):
        """Mutate the session's data in place; deletions apply first.

        Atoms are ``(predicate, (constants...))`` pairs.  The raw ABox,
        every cached completion and every loaded backend are updated
        incrementally so subsequent answers match a from-scratch
        session over the updated data (see
        :mod:`repro.service.updates`).  Returns that module's
        :class:`~repro.service.updates.UpdateResult`.
        """
        from ..service.updates import apply_update

        return apply_update(self.abox, self._completions, [self],
                            inserts=inserts, deletes=deletes)

    def insert_facts(self, atoms: Iterable[Tuple[str, Tuple[str, ...]]]):
        """Insert ground atoms (see :meth:`apply_update`)."""
        return self.apply_update(inserts=atoms)

    def delete_facts(self, atoms: Iterable[Tuple[str, Tuple[str, ...]]]):
        """Delete ground atoms (see :meth:`apply_update`)."""
        return self.apply_update(deletes=atoms)

    def loaded_backends(self):
        """The ``(engine name, variant) -> Engine`` pairs loaded so far
        (variant is ``"raw"`` or ``("completed", id(tbox))``); the
        update layer walks these to push data deltas."""
        return tuple(self._backends.items())

    def pinned_constants(self) -> FrozenSet[str]:
        """Constants held in the active domain by ``extra_relations``.

        Extra relations are static side tables (the OBDA mapping
        layer); ABox updates must never evict their constants from
        ``__adom__`` even when the last ABox atom naming them goes."""
        if not self._extra:
            return frozenset()
        return frozenset(constant for rows in self._extra.values()
                         for row in rows for constant in row)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        for loaded in self._backends.values():
            loaded.close()
        self._backends.clear()

    def __enter__(self) -> "AnswerSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"AnswerSession({self.abox!r}, engine={self.engine!r}, "
                f"{self.data_loads} backends loaded)")


def answer(omq: OMQ, abox: ABox, method: str = "auto",
           engine: str = "python", optimize_program: bool = False,
           magic: bool = False, options=None) -> "Answers":
    """Certain answers to ``omq`` over ``abox`` via rewriting.

    Rewrites over complete data instances and evaluates over the
    completion of ``abox`` (the classical reduction (1) combined with
    Section 2's completeness assumption); ``perfectref`` evaluates its
    arbitrary-instance rewriting over the raw data.

    Optional pipeline stages (all answer-preserving), bundled into an
    :class:`~repro.rewriting.plan.AnswerOptions` (pass one via
    ``options``, or use the legacy flags):

    * ``method="adaptive"`` picks the cheapest of the Section 3
      rewriters for this data via the Section 6 cost model;
    * ``optimize_program`` runs the Appendix D.4 optimiser (emptiness
      pruning, deduplication, Tw*-style inlining) on the rewriting;
    * ``magic`` applies the magic-sets transformation before
      evaluation;
    * ``engine`` selects the evaluator: the native Python engine, SQL
      with full materialisation (``"sql"``) or SQL views
      (``"sql-views"``).

    This is a thin wrapper creating a one-shot :class:`AnswerSession`;
    use a session directly to answer several queries over one
    instance, or :func:`repro.compile` + ``Plan.execute`` to reuse one
    compiled plan across many instances.
    """
    with AnswerSession(abox, engine=engine) as session:
        return session.answer(omq, method=method,
                              optimize_program=optimize_program,
                              magic=magic, options=options)
