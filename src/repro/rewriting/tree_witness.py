"""Tree witnesses (Section 3.4, after [37]).

A tree witness for an OMQ ``(T, q(x))`` is a pair ``t = (tr, ti)`` of
disjoint variable sets (``ti`` nonempty and existential) such that the
atoms ``q_t`` touching ``ti`` can be homomorphically mapped into the
canonical model ``C_{T, {A_rho(a)}}`` with exactly ``tr`` going to the
root ``a``; such ``rho`` are the witness's *generators*.  Intuitively,
``t`` marks a fragment of the query that can be matched entirely inside
the anonymous part of the canonical model below a single individual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Set, Tuple

from ..chase.canonical import CanonicalModel, individual
from ..chase.homomorphism import homomorphisms
from ..data.abox import ABox
from ..ontology.tbox import surrogate_name
from ..ontology.terms import Role
from ..queries.cq import CQ, Atom, Variable


@dataclass(frozen=True)
class TreeWitness:
    """A tree witness ``t = (tr, ti)`` with its generating roles."""

    roots: FrozenSet[Variable]      # tr — mapped onto an individual
    interior: FrozenSet[Variable]   # ti — mapped to labelled nulls
    atoms: FrozenSet[Atom]          # q_t
    generators: Tuple[Role, ...]    # the roles rho generating t

    def __str__(self) -> str:
        gens = ",".join(str(g) for g in self.generators)
        return (f"tw(tr={sorted(self.roots)}, ti={sorted(self.interior)}, "
                f"gen={{{gens}}})")


def witness_atoms(query: CQ, interior: FrozenSet[Variable]) -> FrozenSet[Atom]:
    """``q_t``: the atoms of ``q`` with at least one variable in ``ti``."""
    return frozenset(atom for atom in query.atoms
                     if set(atom.args) & interior)


def _connected_existential_subsets(query: CQ) -> Iterator[FrozenSet[Variable]]:
    """All connected sets of existential variables (candidate ``ti``)."""
    graph = query.gaifman()
    existential = sorted(query.existential_vars)
    seen: Set[FrozenSet[Variable]] = set()
    stack: List[FrozenSet[Variable]] = []
    for var in existential:
        singleton = frozenset({var})
        if singleton not in seen:
            seen.add(singleton)
            stack.append(singleton)
    while stack:
        subset = stack.pop()
        yield subset
        neighbours = {n for v in subset for n in graph.neighbors(v)}
        for cand in sorted(neighbours - subset):
            if cand in query.existential_vars:
                extended = subset | {cand}
                if extended not in seen:
                    seen.add(extended)
                    stack.append(extended)


def _generators(tbox, query: CQ, roots: FrozenSet[Variable],
                interior: FrozenSet[Variable],
                atoms: FrozenSet[Atom]) -> List[Role]:
    """The roles ``rho`` generating ``(tr, ti)``: a homomorphism of
    ``q_t`` into ``C_{T, {A_rho(a)}}`` must send ``tr`` to ``a`` and
    ``ti`` strictly below it."""
    generators: List[Role] = []
    sub_query = CQ(sorted(atoms), tuple(sorted(roots)))
    for role in sorted(tbox.roles):
        if tbox.is_reflexive(role):
            continue
        abox = ABox([(surrogate_name(role), ("a",))])
        model = CanonicalModel(tbox, abox,
                               max_depth=len(interior) + 1)
        fixed = {var: individual("a") for var in roots}
        for hom in homomorphisms(model, sub_query, fixed):
            # every interior variable must sit on a labelled null of the
            # branch starting with rho (h^{-1}(a) = tr exactly)
            if all(hom[var][1] and hom[var][1][0] == role
                   for var in interior):
                generators.append(role)
                break
    return generators


def tree_witnesses(tbox, query: CQ,
                   require_rooted: bool = False) -> List[TreeWitness]:
    """All tree witnesses of ``(T, q)`` (with ``tr != empty`` when
    ``require_rooted``), each carrying its generating roles."""
    graph = query.gaifman()
    witnesses: List[TreeWitness] = []
    for interior in _connected_existential_subsets(query):
        roots = frozenset(
            {n for v in interior for n in graph.neighbors(v)} - interior)
        if require_rooted and not roots:
            continue
        atoms = witness_atoms(query, interior)
        if not atoms:
            continue
        generators = _generators(tbox, query, roots, interior, atoms)
        if generators:
            witnesses.append(TreeWitness(roots, interior, atoms,
                                         tuple(generators)))
    return witnesses


def conflict(first: TreeWitness, second: TreeWitness) -> bool:
    """Two tree witnesses conflict when their ``q_t`` share an atom
    (they cannot be applied together in one rewriting disjunct)."""
    return bool(first.atoms & second.atoms)


def independent_subsets(witnesses: List[TreeWitness]
                        ) -> Iterator[Tuple[TreeWitness, ...]]:
    """All subsets of pairwise non-conflicting tree witnesses (including
    the empty one) — the disjuncts of the tree-witness UCQ rewriting."""
    def extend(prefix: Tuple[TreeWitness, ...], rest: List[TreeWitness]):
        yield prefix
        for i, cand in enumerate(rest):
            if all(not conflict(cand, chosen) for chosen in prefix):
                yield from extend(prefix + (cand,), rest[i + 1:])

    yield from extend((), witnesses)
