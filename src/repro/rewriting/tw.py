"""The Tw rewriter (Section 3.4): NDL-rewritings for ``OMQ(inf, 1, l)``
— arbitrary ontologies with bounded-leaf tree-shaped CQs — evaluable in
LOGCFL (Theorem 13).

The CQ is split at a balancing vertex ``z_q`` (Lemma 14) into branch
subqueries; additionally, every tree witness whose interior contains
``z_q`` contributes a clause matching the witness fragment inside the
anonymous part of the canonical model.  Subquery sizes halve at every
step, giving logarithmic depth and a linear weight function — the
skinny-reducibility conditions of Corollary 7.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from ..chase.certain import is_certain_answer
from ..data.abox import ABox
from ..datalog.program import Clause, Equality, Literal, NDLQuery, Program
from ..datalog.transform import star_transform
from ..ontology.tbox import surrogate_name
from ..queries.cq import CQ, Atom, Variable
from .tree_witness import TreeWitness, tree_witnesses


def tw_rewrite(tbox, query: CQ, over: str = "complete",
               inline: bool = False, simplify: bool = True) -> NDLQuery:
    """The tree-witness NDL-rewriting of ``(T, q)`` of Theorem 13.

    ``simplify`` applies the Appendix A.6.4 display simplification
    (base-case predicates ``G_q(x) <- q(x)`` are substituted into their
    callers); ``inline=True`` additionally applies the stronger ``Tw*``
    post-processing of Appendix D.4 (single-clause predicates used at
    most twice are substituted away).
    """
    if not query.is_tree_shaped:
        raise ValueError("the Tw rewriter needs a tree-shaped CQ")
    if not query.is_connected:
        raise ValueError("the Tw rewriter needs a connected CQ")
    builder = _TwBuilder(tbox, query)
    result = builder.build()
    if simplify and not inline:
        from ..datalog.transform import inline_edb_leaves

        result = inline_edb_leaves(result)
    if inline:
        result = inline_single_use(result)
    if over == "arbitrary":
        result = star_transform(result, tbox)
    return result


def splitting_vertex(query: CQ) -> Variable:
    """A vertex splitting the Gaifman tree into components of size at
    most ``ceil(n/2)`` (Lemma 14); for two-variable queries with an
    existential variable, that variable is chosen, as in Section 3.4."""
    variables = sorted(query.variables)
    if len(variables) == 2 and query.existential_vars:
        return min(query.existential_vars)
    graph = query.gaifman()
    size = len(variables)
    best, best_cost = None, None
    for var in variables:
        rest = graph.subgraph(set(variables) - {var})
        worst = max((len(c) for c in nx.connected_components(rest)),
                    default=0)
        if best_cost is None or worst < best_cost:
            best, best_cost = var, worst
    assert best is not None and best_cost <= -(-size // 2)
    return best


class _TwBuilder:
    def __init__(self, tbox, query: CQ):
        self.tbox = tbox
        self.query = query
        self.clauses: List[Clause] = []
        self.names: Dict[Tuple, str] = {}
        self.built: Set[str] = set()

    def build(self) -> NDLQuery:
        goal = self._define(self.query)
        if self.query.is_boolean:
            self._boolean_root_clauses(goal)
        return NDLQuery(Program(self.clauses), goal,
                        tuple(self.query.answer_vars))

    # -- predicate bookkeeping ----------------------------------------------

    def _name(self, query: CQ) -> str:
        key = (frozenset(query.atoms), query.answer_vars)
        if key not in self.names:
            self.names[key] = f"Q{len(self.names)}"
        return self.names[key]

    def _define(self, query: CQ) -> str:
        """Emit the clauses for ``G_q`` (memoised); returns the name."""
        name = self._name(query)
        if name in self.built:
            return name
        self.built.add(name)
        head = Literal(name, query.answer_vars)
        if not query.existential_vars:
            self.clauses.append(Clause(head, tuple(
                Literal(atom.predicate, atom.args) for atom in query.atoms)))
            return name
        split = splitting_vertex(query)
        self._branch_clause(query, head, split)
        self._witness_clauses(query, head, split)
        return name

    # -- the two clause forms of Section 3.4 -----------------------------------

    def _branch_clause(self, query: CQ, head: Literal,
                       split: Variable) -> None:
        """``G_q(x) <- {atoms at z_q} & G_{q_1}(x_1) & ... & G_{q_n}(x_n)``
        for the branch subqueries hanging off the splitting vertex."""
        graph = query.gaifman()
        body: List[object] = [Literal(atom.predicate, atom.args)
                              for atom in query.atoms
                              if set(atom.args) <= {split}]
        answers = set(query.answer_vars) | {split}
        rest = graph.subgraph(set(query.variables) - {split})
        for component in sorted(nx.connected_components(rest), key=sorted):
            branch_vars = set(component) | {split}
            atoms = [atom for atom in query.atoms
                     if set(atom.args) <= branch_vars
                     and set(atom.args) & set(component)]
            if not atoms:
                continue
            occurring = {var for atom in atoms for var in atom.args}
            branch_answers = tuple(sorted(occurring & answers))
            branch = CQ(atoms, branch_answers)
            body.append(Literal(self._define(branch), branch_answers))
        self.clauses.append(Clause(head, tuple(body)))

    def _witness_clauses(self, query: CQ, head: Literal,
                         split: Variable) -> None:
        """One clause per tree witness ``t`` with ``z_q`` interior and
        ``tr`` nonempty, per generating role:
        ``G_q(x) <- A_rho(z_0) & (z = z_0) & G_{q^t_1} & ...``."""
        for witness in tree_witnesses(self.tbox, query, require_rooted=True):
            if split not in witness.interior:
                continue
            anchor = min(witness.roots)
            remaining = [atom for atom in query.atoms
                         if atom not in witness.atoms]
            component_literals = self._witness_components(
                query, witness, remaining)
            for role in witness.generators:
                body: List[object] = [
                    Literal(surrogate_name(role), (anchor,))]
                body.extend(Equality(var, anchor)
                            for var in sorted(witness.roots - {anchor}))
                body.extend(component_literals)
                self.clauses.append(Clause(head, tuple(body)))

    def _witness_components(self, query: CQ, witness: TreeWitness,
                            remaining: List[Atom]) -> List[Literal]:
        """``G_{q^t_i}`` literals for the connected components of
        ``q`` without ``q_t``."""
        if not remaining:
            return []
        graph = nx.Graph()
        for atom in remaining:
            for var in atom.args:
                graph.add_node(var)
            if atom.is_binary and atom.args[0] != atom.args[1]:
                graph.add_edge(*atom.args)
        answers = set(query.answer_vars) | set(witness.roots)
        literals: List[Literal] = []
        for component in sorted(nx.connected_components(graph), key=sorted):
            atoms = [atom for atom in remaining
                     if set(atom.args) <= set(component)]
            occurring = {var for atom in atoms for var in atom.args}
            component_answers = tuple(sorted(occurring & answers))
            sub = CQ(atoms, component_answers)
            literals.append(Literal(self._define(sub), component_answers))
        return literals

    def _boolean_root_clauses(self, goal: str) -> None:
        """``G_{q_0} <- A(x)`` for every unary predicate ``A`` with
        ``T, {A(a)} |= q_0`` (matches entirely in the anonymous part)."""
        names = set(self.tbox.atomic_concept_names)
        names.update(atom.predicate for atom in self.query.unary_atoms())
        for name in sorted(names):
            abox = ABox([(name, ("a",))])
            if is_certain_answer(self.tbox, abox, self.query, ()):
                self.clauses.append(
                    Clause(Literal(goal, ()), (Literal(name, ("x",)),)))


def inline_single_use(query: NDLQuery) -> NDLQuery:
    """The ``Tw*`` optimisation of Appendix D.4: substitute away IDB
    predicates that are defined by a single clause and occur at most
    twice in rule bodies."""
    program = query.program
    while True:
        uses: Dict[str, int] = {}
        for clause in program.clauses:
            for atom in clause.body_literals:
                if atom.predicate in program.idb_predicates:
                    uses[atom.predicate] = uses.get(atom.predicate, 0) + 1
        target = None
        for predicate in sorted(program.idb_predicates):
            if predicate == query.goal:
                continue
            if (len(program.clauses_for(predicate)) == 1
                    and uses.get(predicate, 0) <= 2):
                target = predicate
                break
        if target is None:
            return NDLQuery(program, query.goal, query.answer_vars)
        definition = program.clauses_for(target)[0]
        new_clauses: List[Clause] = []
        counter = [0]
        for clause in program.clauses:
            if clause.head.predicate == target:
                continue
            body: List[object] = []
            for atom in clause.body:
                if isinstance(atom, Literal) and atom.predicate == target:
                    body.extend(_instantiate(definition, atom, counter))
                else:
                    body.append(atom)
            new_clauses.append(Clause(clause.head, tuple(body)))
        program = Program(new_clauses)


def _instantiate(definition: Clause, call: Literal,
                 counter: List[int]) -> List[object]:
    """The body of ``definition`` with head args bound to the call args
    and local variables freshened."""
    mapping: Dict[str, str] = dict(zip(definition.head.args, call.args))
    counter[0] += 1
    suffix = f"_i{counter[0]}"
    renamed: List[object] = []
    for atom in definition.body:
        new_atom = atom.rename({
            var: mapping.get(var, var + suffix)
            for var in atom.variables})
        renamed.append(new_atom)
    return renamed
