"""The tree-witness UCQ rewriting over complete data instances
(after [37]; our stand-in for the Rapid UCQ rewriter of Section 6).

One disjunct per independent (pairwise non-conflicting) set of tree
witnesses and per choice of generators: the covered atoms are replaced
by a surrogate atom ``A_rho(z_0)`` plus equalities gluing the witness
roots.  The number of disjuncts is exponential in the number of
independent witness choices — the behaviour Figure 2 exhibits for the
UCQ-style engines.  Reproduces the 9-CQ rewriting of Appendix A.6.1 on
the running example.
"""

from __future__ import annotations

import itertools
from typing import List

from ..datalog.program import Clause, Equality, Literal, NDLQuery, Program
from ..datalog.transform import star_transform
from ..ontology.tbox import surrogate_name
from ..queries.cq import CQ
from .tree_witness import independent_subsets, tree_witnesses


def ucq_rewrite(tbox, query: CQ, over: str = "complete",
                max_disjuncts: int = 100000) -> NDLQuery:
    """The tree-witness UCQ rewriting of ``(T, q)`` as an NDL program
    with one clause per disjunct (all with the goal in the head)."""
    witnesses = tree_witnesses(tbox, query)
    head = Literal("G", tuple(query.answer_vars))
    clauses: List[Clause] = []
    for chosen in independent_subsets(witnesses):
        covered = set()
        for witness in chosen:
            covered |= witness.atoms
        remaining = [atom for atom in query.atoms if atom not in covered]
        if any(not witness.roots and witness.atoms != frozenset(query.atoms)
               for witness in chosen):
            continue
        generator_pools = [witness.generators for witness in chosen]
        for roles in itertools.product(*generator_pools):
            body: List[object] = [Literal(atom.predicate, atom.args)
                                  for atom in remaining]
            for witness, role in zip(chosen, roles):
                if witness.roots:
                    anchor = min(witness.roots)
                    body.append(Literal(surrogate_name(role), (anchor,)))
                    body.extend(Equality(var, anchor)
                                for var in sorted(witness.roots - {anchor}))
                else:
                    body.append(Literal(surrogate_name(role),
                                        ("_z_root",)))
            clauses.append(Clause(head, tuple(body)))
            if len(clauses) > max_disjuncts:
                raise RuntimeError(
                    "UCQ rewriting exceeded the disjunct budget "
                    f"({max_disjuncts}) - exponential blow-up")
    result = NDLQuery(Program(clauses), "G", tuple(query.answer_vars))
    if over == "arbitrary":
        result = star_transform(result, tbox)
    return result
